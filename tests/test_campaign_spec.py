"""Validation, grid expansion and hashing of declarative campaign specs.

The expansion properties the runner relies on: ``expand_grid`` is
deterministic, order-stable, and exactly the Cartesian product of the sweep
axes with the zipped axes advanced in lockstep as one trailing axis.
"""

from __future__ import annotations

import itertools
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign import (
    CampaignSpec,
    SpecError,
    builder_names,
    expand_grid,
    load_spec,
    point_id,
    spec_from_dict,
    spec_hash,
)

EXAMPLES = Path(__file__).resolve().parent.parent / "examples" / "campaigns"

try:
    import tomllib  # noqa: F401

    HAVE_TOMLLIB = True
except ModuleNotFoundError:  # pragma: no cover - Python < 3.11
    HAVE_TOMLLIB = False

needs_tomllib = pytest.mark.skipif(not HAVE_TOMLLIB, reason="tomllib needs Python 3.11+")


def base_data() -> dict:
    """A valid little spec the error tests mutate."""
    return {
        "campaign": {
            "name": "unit",
            "builder": "nav_pairs",
            "seeds": [1, 2],
            "duration_s": 0.5,
        },
        "params": {"transport": "udp"},
        "sweep": {"n_greedy": [0, 1]},
        "zip": {"alpha": [0, 3], "nav_inflation_us": [0.0, 300.0]},
    }


# ------------------------------------------------------------ validation ----


def test_valid_spec_resolves():
    spec = spec_from_dict(base_data())
    assert spec.builder == "nav_pairs"
    assert spec.seeds == (1, 2)
    assert spec.n_points == 4  # 2 sweep values x 2 zipped rows
    assert spec.axis_names() == ["n_greedy", "alpha", "nav_inflation_us"]


def test_unknown_builder_lists_known_ones():
    data = base_data()
    data["campaign"]["builder"] = "nope"
    with pytest.raises(SpecError, match="unknown builder 'nope'") as exc:
        spec_from_dict(data)
    assert "nav_pairs" in str(exc.value)  # the known-builders list is shown


def test_unknown_parameter_lists_accepted_ones():
    data = base_data()
    data["params"]["bogus_knob"] = 1
    with pytest.raises(SpecError, match="bogus_knob") as exc:
        spec_from_dict(data)
    assert "accepts" in str(exc.value)
    assert "nav_inflation_us" in str(exc.value)


@pytest.mark.parametrize("reserved", ["seed", "duration_s"])
def test_reserved_parameters_rejected(reserved):
    data = base_data()
    data["sweep"][reserved] = [1, 2]
    with pytest.raises(SpecError, match="campaign engine"):
        spec_from_dict(data)


def test_zip_length_mismatch():
    data = base_data()
    data["zip"]["alpha"] = [0, 3, 6]
    with pytest.raises(SpecError, match="same length"):
        spec_from_dict(data)


def test_parameter_in_two_tables():
    data = base_data()
    data["sweep"]["alpha"] = [0, 1]  # also a zip axis
    with pytest.raises(SpecError, match="exactly one"):
        spec_from_dict(data)


@pytest.mark.parametrize(
    "seeds, msg",
    [
        ([], "non-empty"),
        ([1, 1], "duplicate"),
        ([1, True], "integers"),
        ([1, "x"], "integers"),
    ],
)
def test_bad_seeds(seeds, msg):
    data = base_data()
    data["campaign"]["seeds"] = seeds
    with pytest.raises(SpecError, match=msg):
        spec_from_dict(data)


@pytest.mark.parametrize("duration", [0, -1.0, "long", True])
def test_bad_duration(duration):
    data = base_data()
    data["campaign"]["duration_s"] = duration
    with pytest.raises(SpecError, match="duration_s"):
        spec_from_dict(data)


def test_unknown_top_level_table():
    data = base_data()
    data["sweeps"] = {"n_greedy": [0]}  # typo for [sweep]
    with pytest.raises(SpecError, match=r"unknown top-level table.*sweeps"):
        spec_from_dict(data)


def test_empty_axis_rejected():
    data = base_data()
    data["sweep"]["n_greedy"] = []
    with pytest.raises(SpecError, match="non-empty list"):
        spec_from_dict(data)


def test_quick_may_only_narrow_existing_axes():
    data = base_data()
    data["quick"] = {"sweep": {"greedy_percentage": [50.0]}}  # new axis
    with pytest.raises(SpecError, match="only narrow"):
        spec_from_dict(data, quick=True)
    # the same override is simply ignored when quick mode is off
    assert spec_from_dict(data).n_points == 4


def test_quick_overrides_apply_and_change_the_hash():
    data = base_data()
    data["quick"] = {
        "seeds": [1],
        "duration_s": 0.1,
        "sweep": {"n_greedy": [1]},
        "zip": {"alpha": [3], "nav_inflation_us": [300.0]},
    }
    full = spec_from_dict(data)
    quick = spec_from_dict(data, quick=True)
    assert full.n_points == 4 and quick.n_points == 1
    assert quick.seeds == (1,) and quick.duration_s == 0.1
    assert spec_hash(full) != spec_hash(quick)


def test_opaque_parameter_values_rejected():
    data = base_data()
    data["params"]["transport"] = object()
    with pytest.raises(SpecError, match="plain data"):
        spec_from_dict(data)


# ---------------------------------------------------------------- hashing ----


def test_spec_hash_ignores_cosmetic_fields():
    a = spec_from_dict(base_data())
    cosmetic = base_data()
    cosmetic["campaign"]["name"] = "renamed"
    cosmetic["campaign"]["description"] = "now with prose"
    b = spec_from_dict(cosmetic, source="elsewhere.toml")
    assert spec_hash(a) == spec_hash(b)


@pytest.mark.parametrize(
    "mutate",
    [
        lambda d: d["campaign"].__setitem__("seeds", [1, 2, 3]),
        lambda d: d["campaign"].__setitem__("duration_s", 1.0),
        lambda d: d["params"].__setitem__("transport", "tcp"),
        lambda d: d["sweep"].__setitem__("n_greedy", [0, 1, 2]),
        lambda d: d["campaign"].__setitem__("builder", "nav_shared_sender"),
    ],
)
def test_spec_hash_tracks_material_fields(mutate):
    base = spec_from_dict(base_data())
    data = base_data()
    mutate(data)
    if data["campaign"]["builder"] == "nav_shared_sender":
        # that builder has different parameters; keep the spec valid
        data["params"] = {"transport": "udp"}
        data["sweep"] = {"n_receivers": [2, 3]}
        data["zip"] = {}
    assert spec_hash(spec_from_dict(data)) != spec_hash(base)


def test_point_id_is_stable_and_order_insensitive():
    a = point_id({"x": 1, "y": "udp"})
    b = point_id({"y": "udp", "x": 1})
    assert a == b
    assert a != point_id({"x": 2, "y": "udp"})
    assert len(a) == 12


# ------------------------------------------------- expansion properties -----

# Specs for the property tests are built directly (bypassing builder
# signature validation) so the axes can be arbitrary names/values.

axis_values = st.lists(st.integers(-50, 50), min_size=1, max_size=4, unique=True)
sweep_tables = st.dictionaries(
    st.sampled_from(["a", "b", "c"]), axis_values, max_size=3
)
zip_shapes = st.tuples(
    st.lists(st.sampled_from(["za", "zb"]), unique=True, max_size=2),
    st.integers(min_value=1, max_value=4),
)


def make_spec(params, sweep, zip_names, zip_len):
    zip_axes = {
        name: [10 * zip_len + i + ord(name[-1]) for i in range(zip_len)]
        for name in zip_names
    }
    return CampaignSpec(
        name="prop",
        builder="nav_pairs",
        seeds=(1,),
        duration_s=1.0,
        params=dict(params),
        sweep={k: list(v) for k, v in sweep.items()},
        zip_axes=zip_axes,
    )


@settings(max_examples=60, deadline=None)
@given(
    params=st.dictionaries(st.sampled_from(["p", "q"]), st.integers(), max_size=2),
    sweep=sweep_tables,
    zip_shape=zip_shapes,
)
def test_expand_grid_is_exactly_the_cartesian_product(params, sweep, zip_shape):
    zip_names, zip_len = zip_shape
    spec = make_spec(params, sweep, zip_names, zip_len)
    points = expand_grid(spec)

    # Reference expansion: product over sweep axes in declaration order,
    # rightmost fastest, with the zip block as one trailing composite axis.
    # Every axis entry is a tuple of (name, value) pairs.
    axes = [
        [((name, value),) for value in values] for name, values in sweep.items()
    ]
    if spec.zip_axes:
        axes.append(
            [
                tuple((name, values[i]) for name, values in spec.zip_axes.items())
                for i in range(zip_len)
            ]
        )
    expected = []
    for combo in itertools.product(*axes):
        point = dict(params)
        for part in combo:
            point.update(dict(part))
        expected.append(point)

    assert points == expected  # same dicts, same ORDER — order-stable
    assert len(points) == spec.n_points
    assert expand_grid(spec) == points  # deterministic across calls
    # every point carries the fixed params and every axis name exactly once
    for point in points:
        assert set(point) == set(params) | set(sweep) | set(spec.zip_axes)
        for key, value in params.items():
            assert point[key] == value


@settings(max_examples=40, deadline=None)
@given(sweep=sweep_tables, zip_shape=zip_shapes)
def test_expand_grid_point_ids_unique_when_values_distinct(sweep, zip_shape):
    zip_names, zip_len = zip_shape
    spec = make_spec({}, sweep, zip_names, zip_len)
    points = expand_grid(spec)
    # axis values are unique per axis, so grid points are pairwise distinct
    ids = [point_id(p) for p in points]
    assert len(set(ids)) == len(ids)


def test_zip_axis_varies_fastest():
    spec = CampaignSpec(
        name="order",
        builder="nav_pairs",
        seeds=(1,),
        duration_s=1.0,
        sweep={"s": [0, 1]},
        zip_axes={"z": [10, 20]},
    )
    assert expand_grid(spec) == [
        {"s": 0, "z": 10},
        {"s": 0, "z": 20},
        {"s": 1, "z": 10},
        {"s": 1, "z": 20},
    ]


def test_no_axes_yields_single_point():
    spec = CampaignSpec(
        name="single", builder="nav_pairs", seeds=(1,), duration_s=1.0,
        params={"transport": "udp"},
    )
    assert expand_grid(spec) == [{"transport": "udp"}]
    assert spec.n_points == 1


# ------------------------------------------------------------ example files --


@needs_tomllib
@pytest.mark.parametrize(
    "name, n_full, n_quick",
    [
        ("fig1_nav_udp.toml", 10, 5),
        ("fig8_nav_ngr.toml", 9, 3),
        ("nav_ber_grc_grid.toml", 18, 8),
    ],
)
def test_example_specs_load_in_both_modes(name, n_full, n_quick):
    path = EXAMPLES / name
    full = load_spec(path)
    quick = load_spec(path, quick=True)
    assert full.n_points == n_full
    assert quick.n_points == n_quick
    assert full.builder == quick.builder
    assert full.builder in builder_names()
    assert spec_hash(full) != spec_hash(quick)


@needs_tomllib
def test_load_spec_missing_file():
    with pytest.raises(SpecError, match="not found"):
        load_spec(EXAMPLES / "does_not_exist.toml")


@needs_tomllib
def test_load_spec_invalid_toml(tmp_path):
    bad = tmp_path / "bad.toml"
    bad.write_text("[campaign\nname=")
    with pytest.raises(SpecError, match="invalid TOML"):
        load_spec(bad)
