"""Fault-enabled golden traces, replayed byte-for-byte on every backend.

The clean-channel goldens (tests/test_golden_traces.py) cannot see a
backend that is bit-exact on quiet media but reorders RNG draws the moment
a fault model hooks into delivery or scheduling.  These captures pin the
two sim-plane fault models that ride the hot paths — the Gilbert–Elliott
bursty channel (a per-link delivery hook with its own stream) and the
periodic jammer (a MAC-less radio transmitting undecodable energy) — under
both the scalar reference and the vectorized backend.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.perf.golden import (
    GOLDEN_FAULT_RUNS,
    capture_fault_trace,
    fault_plan,
    fault_trace_filename,
)
from repro.sim.backend import backend_names

GOLDEN_DIR = Path(__file__).parent / "golden"

BACKENDS = backend_names(available_only=True)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("key", sorted(GOLDEN_FAULT_RUNS))
def test_fault_trace_replays_byte_for_byte(key, backend, tmp_path):
    golden_path = GOLDEN_DIR / fault_trace_filename(key)
    replay_path = tmp_path / fault_trace_filename(key)
    records = capture_fault_trace(key, replay_path, backend=backend)
    assert records > 100, f"{key}: suspiciously short trace ({records} records)"
    golden = golden_path.read_bytes()
    replay = replay_path.read_bytes()
    if golden != replay:
        g_lines = golden.decode().splitlines()
        r_lines = replay.decode().splitlines()
        for i, (g, r) in enumerate(zip(g_lines, r_lines)):
            assert g == r, (
                f"{key} on {backend}: first divergence at trace record {i}:\n"
                f"  golden: {g}\n  replay: {r}"
            )
        pytest.fail(
            f"{key} on {backend}: traces differ in length "
            f"({len(g_lines)} golden vs {len(r_lines)} replay)"
        )


def test_fault_plans_actually_bite():
    """Captured parameters must make the faults visible within the trace.

    A fault golden whose model never fires pins nothing — assert each
    committed file shows its impairment: jam bursts in the jammer trace,
    and retransmissions (duplicate DATA sends) well above the clean-channel
    baseline in the bursty-error trace.
    """
    jam_lines = (
        (GOLDEN_DIR / fault_trace_filename("jammer")).read_text().splitlines()
    )
    bursts = [line for line in jam_lines if json.loads(line)["dst"] == "__noise__"]
    assert len(bursts) >= 10, f"only {len(bursts)} jam bursts in 250 ms"

    ge_lines = (
        (GOLDEN_DIR / fault_trace_filename("ge_channel")).read_text().splitlines()
    )
    records = [json.loads(line) for line in ge_lines]
    data = [r for r in records if r["kind"] == "DATA"]
    # fig1_nav_udp's channel is otherwise clean: every DATA retransmission
    # in this trace was caused by the Gilbert-Elliott fades.
    sends = {}
    for r in data:
        key = (r["src"], r["dst"])
        sends[key] = sends.get(key, 0) + 1
    assert sum(sends.values()) > len(set(sends)), "no DATA traffic recorded"
    rts = [r for r in records if r["kind"] == "RTS"]
    assert len(rts) > len(data), (
        "bursty channel should force RTS retries beyond one per DATA frame "
        f"(got {len(rts)} RTS for {len(data)} DATA)"
    )


def test_fault_plan_registry_is_consistent():
    for key in GOLDEN_FAULT_RUNS:
        plan = fault_plan(key)
        assert not plan.empty, f"{key}: committed fault plan is empty"
    with pytest.raises(KeyError):
        fault_plan("nonsense")
    # Per-backend filenames must not collide with the reference set.
    assert fault_trace_filename("jammer", "alt") != fault_trace_filename("jammer")
