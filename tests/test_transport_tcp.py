"""Unit tests for the TCP Reno implementation."""

import pytest

from repro.net.scenario import Scenario
from repro.sim.engine import Simulator
from repro.transport.tcp import CwndTracker, TcpReceiver, TcpSender


def make_pair(seed=1, ber=0.0, **tcp_kwargs):
    s = Scenario(seed=seed)
    s.add_wireless_node("a")
    s.add_wireless_node("b")
    if ber:
        s.error_model.set_ber("a", "b", ber)
        s.error_model.set_ber("b", "a", ber)
    snd, rcv = s.tcp_flow("a", "b", **tcp_kwargs)
    return s, snd, rcv


def test_lossless_transfer_fills_the_pipe():
    s, snd, rcv = make_pair()
    snd.start()
    s.run(2.0)
    assert rcv.segments_received > 200
    assert rcv.goodput_mbps(2e6) > 1.0
    assert snd.timeouts == 0
    # cwnd reached the receiver window cap.
    assert snd.cwnd == pytest.approx(float(snd.window))


def test_in_order_cumulative_acks():
    s, snd, rcv = make_pair()
    snd.start()
    s.run(1.0)
    assert rcv.rcv_next == rcv.segments_received  # no holes on a clean link
    assert rcv.duplicates == 0


def test_slow_start_then_congestion_avoidance():
    s, snd, rcv = make_pair(window=1000)  # effectively uncapped
    snd.start()
    s.run(1.0)
    # With an uncapped window, losses from queue overflow eventually set
    # ssthresh and move the sender to congestion avoidance.
    assert snd.cwnd_stats.max_seen > 10
    assert snd.segments_sent > rcv.segments_received * 0.9


def test_losses_trigger_recovery_not_collapse():
    # High enough that some losses survive the MAC's retry limit and reach
    # TCP (data FER ~0.6 per attempt -> ~7 % end-to-end loss).
    s, snd, rcv = make_pair(ber=8e-4)
    snd.start()
    s.run(3.0)
    assert rcv.segments_received > 30
    assert snd.retransmits > 0


def test_goodput_counts_unique_segments_only():
    s, snd, rcv = make_pair(ber=4e-4)
    snd.start()
    s.run(2.0)
    assert rcv.segments_received <= snd.segments_sent
    assert rcv.bytes_received == rcv.segments_received * snd.mss


def test_retransmit_hook_fires():
    s, snd, rcv = make_pair(ber=4e-4)
    events = []
    snd.on_retransmit = lambda seq, now: events.append(seq)
    snd.start()
    s.run(2.0)
    assert len(events) == snd.retransmits


def test_rto_recovers_from_total_blackout():
    """If the receiver vanishes mid-flow, RTO keeps probing."""
    s, snd, rcv = make_pair()
    snd.start()
    s.run(0.5)
    # Blackhole the link in both directions.
    s.error_model.set_ber("a", "b", 1.0)
    s.run(3.0)
    assert snd.timeouts >= 1
    assert snd.cwnd == 1.0
    # Heal the link: the flow resumes.
    s.error_model.set_ber("a", "b", 0.0)
    before = rcv.segments_received
    s.run(4.0)
    assert rcv.segments_received > before


def test_cwnd_tracker_time_weighted_average():
    sim = Simulator()
    tracker = CwndTracker(sim)
    sim.schedule(100.0, tracker.record, 10.0)  # cwnd 1 for 100 us
    sim.run()
    sim.schedule(100.0, lambda: None)  # cwnd 10 for another 100 us
    sim.run()
    assert tracker.average() == pytest.approx((1.0 * 100 + 10.0 * 100) / 200)
    assert tracker.max_seen == 10.0


def test_receiver_window_caps_cwnd():
    s, snd, rcv = make_pair(window=5)
    snd.start()
    s.run(1.0)
    assert snd.cwnd <= 5.0
    assert snd.cwnd_stats.max_seen <= 5.0


def test_receiver_acks_every_segment():
    s, snd, rcv = make_pair()
    snd.start()
    s.run(1.0)
    assert rcv.acks_sent == rcv.segments_received + rcv.duplicates
