"""Unit tests for the selfish-sender baseline."""

import pytest

from repro.core.baseline import SelfishSenderConfig, make_selfish
from repro.net.scenario import Scenario


def test_config_validation():
    with pytest.raises(ValueError):
        SelfishSenderConfig(cw_factor=0.0)
    with pytest.raises(ValueError):
        SelfishSenderConfig(cw_factor=1.5)


def test_cw_scaling():
    config = SelfishSenderConfig(cw_factor=0.25)
    assert config.cw_min_for(31) == 7
    assert config.cw_max_for(1023) == 255
    # Never collapses below a 1-slot window.
    assert SelfishSenderConfig(cw_factor=0.01).cw_min_for(31) == 1


def test_make_selfish_rewrites_mac_bounds():
    s = Scenario(seed=1)
    s.add_wireless_node("S")
    mac = s.macs["S"]
    make_selfish(mac, SelfishSenderConfig(cw_factor=0.25))
    assert mac.cw_min == 7
    assert mac.cw_max == 255
    assert mac.cw == 7


def test_selfish_sender_beats_honest_competitor():
    from repro.experiments.ext_sender_baseline import run_case

    honest = run_case(1, 1.5, "none")
    selfish = run_case(1, 1.5, "selfish-sender")
    assert selfish["attacker_share"] > honest["attacker_share"] + 0.15


def test_unknown_attack_rejected():
    from repro.experiments.ext_sender_baseline import run_case

    with pytest.raises(ValueError):
        run_case(1, 0.1, "bogus")
