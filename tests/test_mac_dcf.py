"""Unit tests for the DCF MAC state machine.

These drive one or two MACs over a real medium and assert protocol-level
behavior: exchanges complete, retries double CW, NAV defers, duplicates are
filtered, and the misbehavior/detection hooks fire at the right points.
"""

import pytest

from repro.mac.dcf import DcfMac
from repro.mac.frames import Frame, FrameKind
from repro.mac.policy import ReceiverPolicy
from repro.phy.error import BitErrorModel
from repro.phy.medium import Medium, Radio
from repro.phy.params import dot11b
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams


def make_cell(n_nodes=2, rts_enabled=True, phy=None, **mac_kwargs):
    """A tiny co-located cell of ``n_nodes`` MACs on one medium."""
    sim = Simulator()
    phy = phy or dot11b()
    streams = RngStreams(7)
    medium = Medium(sim, phy, streams.stream("medium"), error_model=BitErrorModel())
    macs = []
    for i in range(n_nodes):
        radio = Radio(medium, f"n{i}", (0.0, 0.0))
        macs.append(
            DcfMac(
                sim,
                phy,
                radio,
                streams.stream(f"mac{i}"),
                rts_enabled=rts_enabled,
                **mac_kwargs,
            )
        )
    return sim, medium, macs


def test_single_exchange_with_rts_cts():
    sim, medium, (a, b) = make_cell()
    delivered = []
    b.on_deliver = lambda payload, src: delivered.append((payload, src))
    a.send("hello", "n1", 1024)
    sim.run(until=20_000)
    assert delivered == [("hello", "n0")]
    assert a.stats.tx_rts == 1
    assert a.stats.tx_data == 1
    assert a.stats.msdu_sent == 1
    assert b.stats.tx_cts == 1
    assert b.stats.tx_ack == 1


def test_single_exchange_without_rts_cts():
    sim, medium, (a, b) = make_cell(rts_enabled=False)
    delivered = []
    b.on_deliver = lambda payload, src: delivered.append(payload)
    a.send("x", "n1", 500)
    sim.run(until=20_000)
    assert delivered == ["x"]
    assert a.stats.tx_rts == 0
    assert b.stats.tx_cts == 0
    assert b.stats.tx_ack == 1


def test_queue_drains_in_fifo_order():
    sim, medium, (a, b) = make_cell()
    delivered = []
    b.on_deliver = lambda payload, src: delivered.append(payload)
    for i in range(5):
        a.send(i, "n1", 1024)
    sim.run(until=100_000)
    assert delivered == [0, 1, 2, 3, 4]


def test_queue_overflow_dropped():
    sim, medium, (a, b) = make_cell(queue_limit=3)
    assert a.send(1, "n1", 100)
    assert a.send(2, "n1", 100)
    assert a.send(3, "n1", 100)
    assert not a.send(4, "n1", 100)
    assert a.stats.queue_drops == 1


def test_missing_receiver_retries_and_drops():
    """RTS to a node that never answers: CW doubles, then the packet drops."""
    sim, medium, (a, b) = make_cell()
    dropped = []
    a.on_msdu_dropped = lambda payload, dst: dropped.append(payload)
    a.send("lost", "nowhere", 1024)
    sim.run(until=1_000_000)
    assert dropped == ["lost"]
    assert a.stats.retries == a.phy.short_retry_limit + 1
    assert a.stats.drops == 1
    # CW resets to minimum after the drop.
    assert a.cw == a.phy.cw_min


def test_cw_doubles_on_retry():
    sim, medium, (a, b) = make_cell()
    a.send("x", "nowhere", 1024)
    observed = set()

    def watch():
        observed.add(a.cw)
        if sim.pending_events:
            sim.schedule(500, watch)

    sim.schedule(500, watch)
    sim.run(until=600_000)
    # CW went through doubling steps 31 -> 63 -> 127 ...
    assert 63 in observed
    assert 127 in observed


def test_nav_defers_third_party():
    """A station with NAV set must not transmit until the NAV expires."""
    sim, medium, (a, b, c) = make_cell(3)
    # c overhears a CTS reserving the medium for a long time.
    cts = Frame(FrameKind.CTS, "n1", "n0", 20_000.0, 14)
    b.radio.transmit(cts, 304.0)
    sim.run(until=400)
    assert c.nav_until > sim.now
    c.send("q", "n0", 100)
    sim.run(until=5_000)
    assert c.stats.tx_rts == 0  # still silenced by NAV
    sim.run(until=40_000)
    assert c.stats.tx_rts >= 1  # NAV expired, transmission proceeded


def test_nav_ignored_when_frame_addressed_to_us():
    """Per 802.11 (and exploited by the paper): frames addressed to the
    station do not update its NAV."""
    sim, medium, (a, b) = make_cell()
    cts = Frame(FrameKind.CTS, "n1", "n0", 30_000.0, 14)
    b.radio.transmit(cts, 304.0)
    sim.run(until=400)
    assert a.nav_until <= sim.now  # a is the destination: no NAV update


def test_nav_updates_only_to_larger_values():
    sim, medium, (a, b, c) = make_cell(3)
    big = Frame(FrameKind.CTS, "n1", "n0", 20_000.0, 14)
    b.radio.transmit(big, 304.0)
    sim.run(until=400)
    nav_after_big = c.nav_until
    small = Frame(FrameKind.ACK, "n1", "n0", 1_000.0, 14)
    b.radio.transmit(small, 304.0)
    sim.run(until=800)
    assert c.nav_until == nav_after_big  # smaller NAV must not shrink it


def test_duplicate_data_not_delivered_twice():
    sim, medium, (a, b) = make_cell()
    delivered = []
    b.on_deliver = lambda payload, src: delivered.append(payload)
    frame = Frame(FrameKind.DATA, "n0", "n1", 314.0, 1052, seq=9, payload="dup")
    a.radio.transmit(frame, 957.0)
    sim.run(until=3_000)
    retry = Frame(FrameKind.DATA, "n0", "n1", 314.0, 1052, seq=9, retry=True, payload="dup")
    a.radio.transmit(retry, 957.0)
    sim.run(until=6_000)
    assert delivered == ["dup"]
    assert b.stats.rx_duplicates == 1
    assert b.stats.tx_ack == 2  # duplicates are still acknowledged


def test_receiver_withholds_cts_when_nav_busy():
    """The shared-sender damage mechanism: a receiver whose NAV was inflated
    cannot answer RTS, so the sender times out."""
    sim, medium, (a, b, c) = make_cell(3)
    # c's NAV gets reserved for a long time by an overheard CTS.
    cts = Frame(FrameKind.CTS, "n1", "n0", 50_000.0, 14)
    b.radio.transmit(cts, 304.0)
    sim.run(until=400)
    # Now a sends an RTS to c: c must stay silent.
    a.send("x", "n2", 1024)
    sim.run(until=4_000)
    assert c.stats.tx_cts == 0
    assert a.stats.retries >= 1


def test_fake_ack_policy_hook():
    class FakeAcker(ReceiverPolicy):
        def should_fake_ack(self, corrupted_frame):
            return True

    sim, medium, macs = make_cell(2)
    a, b = macs
    b.policy = FakeAcker()
    b.policy.attach(b)
    medium.error_model.set_ber("n0", "n1", 1.0)  # every data frame corrupted
    medium.addr_dst_survival = 1.0
    medium.addr_src_survival = 1.0
    sent = []
    a.on_msdu_sent = lambda payload, dst: sent.append(payload)
    a.rts_enabled = False
    a.send("x", "n1", 1024)
    sim.run(until=50_000)
    # The sender believes the corrupted frame was delivered.
    assert sent == ["x"]
    assert b.stats.tx_fake_ack >= 1
    assert b.stats.rx_data_corrupted >= 1


def test_spoof_ack_policy_hook():
    class Spoofer(ReceiverPolicy):
        def should_spoof_ack(self, data_frame):
            return True

    sim, medium, macs = make_cell(3, rts_enabled=False)
    a, b, c = macs
    c.policy = Spoofer()
    c.policy.attach(c)
    # b never ACKs (we silence it by making it deaf via its own transmit):
    # simpler: send to a name that matches no radio, but then nobody hears.
    # Instead: corrupt the a->b link so b never receives, while c overhears.
    medium.error_model.set_ber("n0", "n1", 1.0)
    sent = []
    a.on_msdu_sent = lambda payload, dst: sent.append(payload)
    a.send("x", "n1", 1024)
    sim.run(until=50_000)
    assert c.stats.tx_spoofed_ack >= 1
    assert sent == ["x"]  # the spoofed ACK convinced the sender


def test_eifs_after_corrupted_reception():
    sim, medium, (a, b) = make_cell()
    medium.error_model.set_ber("n0", "n1", 1.0)
    frame = Frame(FrameKind.DATA, "n0", "n1", 314.0, 1052, seq=1)
    a.radio.transmit(frame, 957.0)
    sim.run(until=2_000)
    assert b._use_eifs  # next deferral uses EIFS
    # A clean reception clears it.
    medium.error_model.set_ber("n0", "n1", 0.0)
    frame2 = Frame(FrameKind.DATA, "n0", "n1", 314.0, 1052, seq=2)
    a.radio.transmit(frame2, 957.0)
    sim.run(until=4_000)
    assert not b._use_eifs


def test_per_destination_retransmission_disable():
    # Without RTS/CTS so the exchange reaches the data/ACK stage, which is
    # where the spoof-emulation knob acts.
    sim, medium, (a, b) = make_cell(rts_enabled=False)
    a.no_retransmit_to.add("nowhere")
    sent = []
    a.on_msdu_sent = lambda payload, dst: sent.append((payload, dst))
    a.send("x", "nowhere", 1024)
    sim.run(until=100_000)
    # One data attempt, no retries after the ACK timeout, reported as sent.
    assert sent == [("x", "nowhere")]
    assert a.stats.tx_data == 1


def test_per_destination_cw_clamp():
    sim, medium, (a, b) = make_cell()
    a.cw_max_to["nowhere"] = a.phy.cw_min
    a.send("x", "nowhere", 1024)
    sim.run(until=1_000_000)
    # Despite many retries, CW never grew past the clamp.
    assert a.stats.retries > 0
    assert all(cw == a.phy.cw_min for cw in a.stats.cw_samples)


def test_backoff_drawn_within_cw():
    sim, medium, (a, b) = make_cell()
    for _ in range(50):
        a._backoff_slots = None
        a._state = "CONTEND"
        a._queue.append(type("M", (), {"dst": "n1", "size_bytes": 10, "payload": 0, "seq": 0})())
        a._try_start_access()
        assert a._backoff_slots is not None
        assert 0 <= a._backoff_slots <= a.cw
        if a._access_event is not None:
            sim.cancel(a._access_event)
            a._access_event = None
        a._queue.clear()
        a._state = "IDLE"


def test_cw_resets_after_success():
    sim, medium, (a, b) = make_cell()
    a.cw = 255  # pretend we had a bad streak
    a.send("x", "n1", 1024)
    sim.run(until=50_000)
    assert a.stats.msdu_sent == 1
    assert a.cw == a.phy.cw_min


def test_two_senders_share_medium():
    sim, medium, macs = make_cell(4)
    a, b, c, d = macs
    got = {"b": 0, "d": 0}
    b.on_deliver = lambda p, s: got.__setitem__("b", got["b"] + 1)
    d.on_deliver = lambda p, s: got.__setitem__("d", got["d"] + 1)
    for i in range(40):
        a.send(i, "n1", 1024)
        c.send(i, "n3", 1024)
    sim.run(until=500_000)
    assert got["b"] > 5
    assert got["d"] > 5
    # Nobody is starved in an honest cell.
    assert 0.3 < got["b"] / got["d"] < 3.0
