"""Direct unit coverage for the shared detection bookkeeping
(repro.core.detection.report) and the operator-facing aggregation
(repro.core.detection.monitor)."""

from __future__ import annotations

import pytest

from repro.core.detection.monitor import MisbehaviorMonitor, OffenderVerdict
from repro.core.detection.report import DetectionEvent, DetectionReport


def _filled_report() -> DetectionReport:
    report = DetectionReport()
    report.record(10.0, "nav", "S1", "R1", "CTS NAV 31000us")
    report.record(20.0, "nav", "R1", "R1")
    report.record(30.0, "rssi-spoof", "S0", "R1", "ACK deviates 3 dB")
    report.record(40.0, "nav", "S1", "R2")
    return report


# ---------------------------------------------------------------- report ----


def test_empty_report_edge_cases():
    report = DetectionReport()
    assert not report
    assert report.count() == 0
    assert report.count("nav") == 0
    assert report.count(offender="R1") == 0
    assert report.offenders() == {}
    assert report.offenders("nav") == {}


def test_count_filters_by_detector_and_offender():
    report = _filled_report()
    assert report
    assert report.count() == 4
    assert report.count("nav") == 3
    assert report.count("rssi-spoof") == 1
    assert report.count("fake-ack") == 0
    assert report.count(offender="R1") == 3
    assert report.count("nav", offender="R1") == 2
    assert report.count("nav", offender="R2") == 1


def test_offenders_counter_per_detector():
    report = _filled_report()
    assert report.offenders() == {"R1": 3, "R2": 1}
    assert report.offenders("nav") == {"R1": 2, "R2": 1}
    assert report.offenders("rssi-spoof") == {"R1": 1}
    assert report.offenders("nav").most_common(1) == [("R1", 2)]


def test_record_respects_max_events():
    report = DetectionReport(max_events=2)
    for i in range(5):
        report.record(float(i), "nav", "S", "R")
    assert len(report.events) == 2
    assert report.count("nav") == 2


def test_events_are_frozen():
    event = DetectionEvent(1.0, "nav", "S", "R", "detail")
    with pytest.raises(AttributeError):
        event.detector = "other"


# --------------------------------------------------------------- monitor ----


def test_monitor_on_empty_report():
    monitor = MisbehaviorMonitor(DetectionReport())
    assert monitor.verdicts() == []
    assert monitor.to_text() == "no misbehavior detected\n"


def test_monitor_threshold_validation():
    with pytest.raises(ValueError, match="min_detections"):
        MisbehaviorMonitor(DetectionReport(), min_detections=0)


def test_monitor_min_detections_filters_sparse_offenders():
    report = _filled_report()
    monitor = MisbehaviorMonitor(report, min_detections=3)
    verdicts = monitor.verdicts()
    assert [v.offender for v in verdicts] == ["R1"]
    v = verdicts[0]
    assert v.total_detections == 3
    assert v.by_detector == {"nav": 2, "rssi-spoof": 1}
    assert v.observers == ("R1", "S0", "S1")
    assert v.first_seen_us == 10.0 and v.last_seen_us == 30.0


def test_monitor_ranks_by_detection_count():
    report = DetectionReport()
    for i in range(2):
        report.record(float(i), "nav", "S0", "A")
    for i in range(5):
        report.record(float(i), "nav", "S0", "B")
    monitor = MisbehaviorMonitor(report, min_detections=1)
    assert [v.offender for v in monitor.verdicts()] == ["B", "A"]


def test_monitor_min_rate_filters_slow_offenders():
    report = DetectionReport()
    # 3 detections over 2 simulated seconds: 1.5/s.
    for t in (0.0, 1e6, 2e6):
        report.record(t, "nav", "S", "slow")
    monitor = MisbehaviorMonitor(report, min_detections=2, min_rate_per_s=10.0)
    assert monitor.verdicts() == []
    relaxed = MisbehaviorMonitor(report, min_detections=2, min_rate_per_s=1.0)
    assert [v.offender for v in relaxed.verdicts()] == ["slow"]
    assert relaxed.verdicts()[0].rate_per_s == pytest.approx(1.5)


def test_corroboration_needs_observers_or_detectors():
    single = OffenderVerdict("R", 3, {"nav": 3}, ("S1",), 0.0, 1.0, 3.0)
    multi_obs = OffenderVerdict("R", 3, {"nav": 3}, ("S1", "S2"), 0.0, 1.0, 3.0)
    multi_det = OffenderVerdict(
        "R", 3, {"nav": 2, "rssi-spoof": 1}, ("S1",), 0.0, 1.0, 3.0
    )
    assert not single.corroborated
    assert multi_obs.corroborated
    assert multi_det.corroborated


def test_monitor_text_rendering_mentions_corroboration():
    monitor = MisbehaviorMonitor(_filled_report(), min_detections=3)
    text = monitor.to_text()
    assert "R1: 3 detections" in text
    assert "[corroborated]" in text


def test_monitor_over_streaming_pipeline_report():
    """The monitor consumes a streaming pipeline's report unchanged."""
    from repro.core.detection.streaming import default_pipeline
    from repro.perf.golden import trace_filename
    from repro.stats.trace import load_trace_jsonl
    from pathlib import Path

    records = load_trace_jsonl(
        Path(__file__).parent / "golden" / trace_filename("grc_nav")
    )
    pipeline = default_pipeline()
    pipeline.feed_many(records)
    verdicts = MisbehaviorMonitor(pipeline.report).verdicts()
    assert verdicts and verdicts[0].offender == "R1"
