"""Unit tests for named RNG substreams."""

from repro.sim.rng import RngStreams


def test_same_name_returns_same_stream():
    streams = RngStreams(seed=7)
    assert streams.stream("a") is streams.stream("a")


def test_different_names_are_independent():
    streams = RngStreams(seed=7)
    a = [streams.stream("a").random() for _ in range(5)]
    b = [streams.stream("b").random() for _ in range(5)]
    assert a != b


def test_same_seed_reproduces_sequences():
    s1 = RngStreams(seed=123)
    s2 = RngStreams(seed=123)
    assert [s1.stream("x").random() for _ in range(10)] == [
        s2.stream("x").random() for _ in range(10)
    ]


def test_different_seeds_differ():
    s1 = RngStreams(seed=1)
    s2 = RngStreams(seed=2)
    assert [s1.stream("x").random() for _ in range(5)] != [
        s2.stream("x").random() for _ in range(5)
    ]


def test_consumption_order_does_not_couple_streams():
    """Drawing from one stream must not perturb another."""
    s1 = RngStreams(seed=9)
    _ = [s1.stream("noise").random() for _ in range(100)]
    tainted = [s1.stream("signal").random() for _ in range(5)]
    s2 = RngStreams(seed=9)
    clean = [s2.stream("signal").random() for _ in range(5)]
    assert tainted == clean


def test_spawn_derives_independent_family():
    root = RngStreams(seed=5)
    child_a = root.spawn(1)
    child_b = root.spawn(2)
    same_child = RngStreams(seed=5).spawn(1)
    assert child_a.stream("x").random() != child_b.stream("x").random()
    assert RngStreams(seed=5).spawn(1).seed == same_child.seed


# ------------------------------------------------------- batched uniforms --


def test_batched_uniform_matches_direct_draws():
    """Batch refills must hand out the exact sequence rng.random() yields."""
    import random

    from repro.sim.rng import BatchedUniform

    reference = random.Random(42)
    direct = [reference.random() for _ in range(1000)]
    batched = BatchedUniform(random.Random(42), batch=256)
    assert [batched.random() for _ in range(1000)] == direct


def test_batched_uniform_batch_one_preserves_interleaving():
    """batch=1 degenerates to draw-on-demand: another consumer of the same
    stream (the RSSI-jitter Gaussian) sees an untouched interleaving."""
    import random

    from repro.sim.rng import BatchedUniform

    reference = random.Random(7)
    expected = [reference.random(), reference.gauss(0, 1), reference.random()]

    shared = random.Random(7)
    uniform = BatchedUniform(shared, batch=1)
    got = [uniform.random(), shared.gauss(0, 1), uniform.random()]
    assert got == expected


def test_batched_uniform_rejects_bad_batch():
    import random

    import pytest

    from repro.sim.rng import BatchedUniform

    with pytest.raises(ValueError):
        BatchedUniform(random.Random(1), batch=0)
