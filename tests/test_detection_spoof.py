"""Unit tests for the spoofed-ACK detectors (RSSI and cross-layer)."""

from repro.core.detection import (
    CrossLayerSpoofDetector,
    DetectionReport,
    RssiSpoofDetector,
)
from repro.mac.frames import Frame, FrameKind
from repro.transport.packets import Packet, PacketKind


def ack(claimed_src="nr"):
    return Frame(FrameKind.ACK, claimed_src, "ns", 0.0, 14)


def make_detector(**kwargs):
    report = DetectionReport()
    return RssiSpoofDetector("ns", report, **kwargs), report


def seed_reference(detector, src="nr", rssi=40.0, n=8):
    for i in range(n):
        detector.observe_data(src, rssi, float(i))


def test_no_reference_passes_everything():
    detector, report = make_detector()
    assert not detector.is_spoofed(ack(), 10.0, 0.0)
    assert detector.passed == 1


def test_min_samples_before_judging():
    detector, report = make_detector(min_samples=4)
    detector.observe_data("nr", 40.0, 0.0)
    assert detector.reference_rssi("nr") is None
    assert not detector.is_spoofed(ack(), 0.0, 1.0)
    seed_reference(detector)
    assert detector.reference_rssi("nr") == 40.0


def test_matching_rssi_passes():
    detector, report = make_detector(threshold_db=1.0)
    seed_reference(detector, rssi=40.0)
    assert not detector.is_spoofed(ack(), 40.5, 10.0)
    assert not report.events


def test_weak_deviating_ack_flagged_and_ignored():
    """Much weaker than the reference: safe to ignore (capture rule)."""
    detector, report = make_detector(threshold_db=1.0, capture_margin_db=10.0)
    seed_reference(detector, rssi=40.0)
    assert detector.is_spoofed(ack(), 25.0, 10.0)
    assert detector.flagged == 1
    assert report.count("rssi-spoof") == 1


def test_strong_deviating_ack_detected_but_not_ignored():
    """Stronger than the reference: detected, but the true receiver might
    have ACKed and been captured — the sender must not drop the ACK."""
    detector, report = make_detector(threshold_db=1.0, capture_margin_db=10.0)
    seed_reference(detector, rssi=40.0)
    assert not detector.is_spoofed(ack(), 55.0, 10.0)
    assert detector.detected_only == 1
    assert report.count("rssi-spoof") == 1


def test_small_weak_deviation_detected_but_not_ignored():
    detector, report = make_detector(threshold_db=1.0, capture_margin_db=10.0)
    seed_reference(detector, rssi=40.0)
    # 3 dB below: deviating, but within the capture margin.
    assert not detector.is_spoofed(ack(), 37.0, 10.0)
    assert report.count("rssi-spoof") == 1


def test_reference_uses_median_not_mean():
    detector, report = make_detector()
    seed_reference(detector, rssi=40.0, n=7)
    detector.observe_data("nr", 200.0, 99.0)  # one wild outlier
    assert detector.reference_rssi("nr") == 40.0


def tcp_data(seq):
    return Packet(PacketKind.TCP_DATA, "f", "ns", "nr", seq=seq, payload_bytes=1024)


def test_cross_layer_detector_fires_on_acked_retransmits():
    report = DetectionReport()
    detector = CrossLayerSpoofDetector("ns", "f", "gr", report, min_events=3)
    for seq in range(10):
        detector.on_mac_acked(tcp_data(seq), "nr")
    for seq in range(5):
        detector.on_tcp_retransmit(seq, float(seq))
    assert detector.detected
    assert report.count("cross-layer", offender="gr") == 1


def test_cross_layer_detector_ignores_unacked_retransmits():
    """Retransmissions of segments the MAC never ACKed are normal loss."""
    report = DetectionReport()
    detector = CrossLayerSpoofDetector("ns", "f", "gr", report, min_events=3)
    for seq in range(100, 110):
        detector.on_tcp_retransmit(seq, 0.0)
    assert not detector.detected
    assert not report.events


def test_cross_layer_detector_fraction_threshold():
    report = DetectionReport()
    detector = CrossLayerSpoofDetector(
        "ns", "f", "gr", report, min_events=2, suspicious_fraction=0.5
    )
    detector.on_mac_acked(tcp_data(1), "nr")
    # 1 acked-retransmit among 10 normal ones: below the fraction, no alarm.
    for seq in range(100, 109):
        detector.on_tcp_retransmit(seq, 0.0)
    detector.on_tcp_retransmit(1, 1.0)
    assert not detector.detected


def test_detection_report_counts_and_bool():
    report = DetectionReport()
    assert not report
    report.record(0.0, "nav", "a", "b")
    report.record(1.0, "rssi-spoof", "a", "c")
    assert report
    assert report.count() == 2
    assert report.count("nav") == 1
    assert report.count("nav", offender="c") == 0
