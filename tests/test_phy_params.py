"""Unit tests for PHY timing parameters and airtime."""

import math

import pytest

from repro.phy.params import dot11a, dot11b


def test_dot11b_ifs_values():
    phy = dot11b()
    assert phy.slot_time == 20.0
    assert phy.sifs == 10.0
    assert phy.difs == 50.0  # SIFS + 2 slots
    assert phy.cw_min == 31
    assert phy.cw_max == 1023


def test_dot11a_ifs_values():
    phy = dot11a()
    assert phy.slot_time == 9.0
    assert phy.sifs == 16.0
    assert phy.difs == 34.0
    assert phy.cw_min == 15


def test_dot11b_control_frame_airtimes():
    phy = dot11b()
    # Long preamble (192 us) plus the frame body at 1 Mbps.
    assert phy.rts_time == pytest.approx(192 + 20 * 8 / 1.0)
    assert phy.cts_time == pytest.approx(192 + 14 * 8 / 1.0)
    assert phy.ack_time == pytest.approx(phy.cts_time)


def test_dot11b_data_airtime_uses_data_rate():
    phy = dot11b(11.0)
    expected = 192 + (28 + 1024) * 8 / 11.0
    assert phy.data_time(1024) == pytest.approx(expected)


def test_dot11a_airtime_rounds_to_symbols():
    phy = dot11a(6.0)
    airtime = phy.airtime(14, 6.0)
    # 20 us preamble plus whole 4 us symbols.
    assert (airtime - 20.0) % 4.0 == pytest.approx(0.0)
    # 14 bytes -> 16+6+112=134 bits -> ceil(134/24)=6 symbols -> 44 us.
    assert airtime == pytest.approx(44.0)


def test_dot11a_higher_rate_shrinks_airtime():
    slow = dot11a(6.0).data_time(1024)
    fast = dot11a(24.0).data_time(1024)
    assert fast < slow


def test_eifs_exceeds_difs():
    for phy in (dot11b(), dot11a()):
        assert phy.eifs == pytest.approx(phy.sifs + phy.ack_time + phy.difs)
        assert phy.eifs > phy.difs


def test_timeouts_cover_the_expected_response():
    phy = dot11b()
    # A CTS arriving after SIFS + its airtime must beat the CTS timeout.
    assert phy.cts_timeout() > phy.sifs + phy.cts_time
    assert phy.ack_timeout() > phy.sifs + phy.ack_time


def test_airtime_monotonic_in_size():
    phy = dot11b()
    times = [phy.airtime(n) for n in (10, 100, 1000, 1500)]
    assert times == sorted(times)
    assert all(not math.isnan(t) and t > 0 for t in times)
