"""Unit tests for PHY timing parameters and airtime."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.phy.params import dot11a, dot11b


def test_dot11b_ifs_values():
    phy = dot11b()
    assert phy.slot_time == 20.0
    assert phy.sifs == 10.0
    assert phy.difs == 50.0  # SIFS + 2 slots
    assert phy.cw_min == 31
    assert phy.cw_max == 1023


def test_dot11a_ifs_values():
    phy = dot11a()
    assert phy.slot_time == 9.0
    assert phy.sifs == 16.0
    assert phy.difs == 34.0
    assert phy.cw_min == 15


def test_dot11b_control_frame_airtimes():
    phy = dot11b()
    # Long preamble (192 us) plus the frame body at 1 Mbps.
    assert phy.rts_time == pytest.approx(192 + 20 * 8 / 1.0)
    assert phy.cts_time == pytest.approx(192 + 14 * 8 / 1.0)
    assert phy.ack_time == pytest.approx(phy.cts_time)


def test_dot11b_data_airtime_uses_data_rate():
    phy = dot11b(11.0)
    expected = 192 + (28 + 1024) * 8 / 11.0
    assert phy.data_time(1024) == pytest.approx(expected)


def test_dot11a_airtime_rounds_to_symbols():
    phy = dot11a(6.0)
    airtime = phy.airtime(14, 6.0)
    # 20 us preamble plus whole 4 us symbols.
    assert (airtime - 20.0) % 4.0 == pytest.approx(0.0)
    # 14 bytes -> 16+6+112=134 bits -> ceil(134/24)=6 symbols -> 44 us.
    assert airtime == pytest.approx(44.0)


def test_dot11a_higher_rate_shrinks_airtime():
    slow = dot11a(6.0).data_time(1024)
    fast = dot11a(24.0).data_time(1024)
    assert fast < slow


def test_eifs_exceeds_difs():
    for phy in (dot11b(), dot11a()):
        assert phy.eifs == pytest.approx(phy.sifs + phy.ack_time + phy.difs)
        assert phy.eifs > phy.difs


def test_timeouts_cover_the_expected_response():
    phy = dot11b()
    # A CTS arriving after SIFS + its airtime must beat the CTS timeout.
    assert phy.cts_timeout() > phy.sifs + phy.cts_time
    assert phy.ack_timeout() > phy.sifs + phy.ack_time


def test_airtime_monotonic_in_size():
    phy = dot11b()
    times = [phy.airtime(n) for n in (10, 100, 1000, 1500)]
    assert times == sorted(times)
    assert all(not math.isnan(t) and t > 0 for t in times)


# ------------------------------------------ fast-path lookup-table pinning --


def test_airtime_table_is_bit_identical_to_formula():
    from repro.phy.params import airtime_formula

    for phy in (dot11b(), dot11a(), dot11b(5.5), dot11a(24.0)):
        for size in (0, 1, 14, 20, 28, 100, 1024, 1500, 2346):
            for rate in (phy.basic_rate, phy.data_rate, 2.0, 5.5, 11.0):
                expected = airtime_formula(
                    size, rate, phy.preamble, phy.ofdm, phy.ofdm_bits_per_symbol
                )
                # Twice: the second call is served from the memo table.
                assert phy.airtime(size, rate) == expected
                assert phy.airtime(size, rate) == expected


@given(
    st.integers(min_value=0, max_value=4096),
    st.sampled_from([1.0, 2.0, 5.5, 6.0, 11.0, 12.0, 24.0, 54.0]),
    st.booleans(),
)
def test_property_airtime_table_matches_formula(size, rate, use_a):
    from repro.phy.params import airtime_formula

    phy = dot11a() if use_a else dot11b()
    expected = airtime_formula(
        size, rate, phy.preamble, phy.ofdm, phy.ofdm_bits_per_symbol
    )
    assert phy.airtime(size, rate) == expected


def test_cached_ifs_and_control_times_match_closed_forms():
    for phy in (dot11b(), dot11a()):
        assert phy.difs == phy.sifs + 2 * phy.slot_time
        assert phy.eifs == phy.sifs + phy.ack_time + phy.difs
        assert phy.rts_time == phy.airtime(20, phy.basic_rate)
        assert phy.cts_time == phy.airtime(14, phy.basic_rate)
        assert phy.ack_time == phy.airtime(14, phy.basic_rate)


def test_pickle_excludes_memo_tables():
    """Worker-process payloads must carry only declared fields; the restored
    instance recomputes identical derived values."""
    import pickle

    phy = dot11b()
    _ = phy.difs, phy.eifs, phy.airtime(1024), phy.rts_time  # populate caches
    assert "_airtime_table" in vars(phy)
    clone = pickle.loads(pickle.dumps(phy))
    assert "_airtime_table" not in vars(clone)
    assert "difs" not in vars(clone)  # cached_property not smuggled
    assert clone == phy  # dataclass equality over declared fields
    assert clone.difs == phy.difs
    assert clone.airtime(1024) == phy.airtime(1024)


def test_frozen_fields_still_rejected():
    import dataclasses

    phy = dot11b()
    with pytest.raises(dataclasses.FrozenInstanceError):
        phy.sifs = 99.0
