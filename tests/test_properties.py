"""Property-based system invariants over randomized scenarios.

hypothesis generates scenario shapes (seeds, loss rates, inflation amounts,
transports); the invariants must hold for every one of them:

* conservation: a sink never receives more packets than its source generated;
* goodput never exceeds the PHY rate;
* NAV values on the air never exceed the protocol maximum;
* MAC counters are internally consistent.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.greedy import GreedyConfig
from repro.mac.frames import FrameKind
from repro.net.scenario import Scenario

US = 1_000_000.0

scenario_params = st.fixed_dictionaries(
    {
        "seed": st.integers(min_value=0, max_value=1000),
        "ber": st.sampled_from([0.0, 1e-5, 2e-4, 8e-4]),
        "nav_us": st.sampled_from([0.0, 500.0, 5_000.0, 31_000.0]),
        "rts": st.booleans(),
        "gp": st.sampled_from([0.0, 50.0, 100.0]),
    }
)


def build_and_run(params, duration=0.3):
    s = Scenario(seed=params["seed"], rts_enabled=params["rts"])
    s.add_wireless_node("NS")
    s.add_wireless_node("GS")
    s.add_wireless_node("NR")
    greedy = None
    if params["nav_us"] > 0:
        greedy = GreedyConfig.nav_inflator(
            params["nav_us"],
            {FrameKind.CTS, FrameKind.ACK},
            greedy_percentage=params["gp"],
        )
    s.add_wireless_node("GR", greedy=greedy)
    if params["ber"] > 0:
        from repro.phy.error import set_ber_all_pairs

        set_ber_all_pairs(s.error_model, ["NS", "GS", "NR", "GR"], params["ber"])
    f1, k1 = s.udp_flow("NS", "NR")
    f2, k2 = s.udp_flow("GS", "GR")
    f1.start()
    f2.start()
    s.run(duration)
    return s, (f1, k1), (f2, k2), duration


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(scenario_params)
def test_conservation_and_capacity(params):
    s, (f1, k1), (f2, k2), duration = build_and_run(params)
    # Conservation: nothing is received that was not sent.
    assert k1.packets_received <= f1.packets_generated
    assert k2.packets_received <= f2.packets_generated
    # Capacity: goodput cannot exceed the PHY data rate.
    total = k1.goodput_mbps(duration * US) + k2.goodput_mbps(duration * US)
    assert total <= s.phy.data_rate


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(scenario_params)
def test_mac_counter_consistency(params):
    s, _flow1, _flow2, _duration = build_and_run(params)
    for mac in s.macs.values():
        stats = mac.stats
        # Every delivered MSDU corresponds to at least one data transmission.
        assert stats.msdu_sent <= stats.tx_data
        # Retries and drops never exceed attempts.
        assert stats.drops <= stats.retries
        # CW samples stay within protocol bounds.
        assert all(mac.cw_min <= cw <= mac.cw_max for cw in stats.cw_samples)
        # Per-destination failures never exceed attempts.
        for dst, attempts in stats.data_attempts_by_dst.items():
            assert stats.ack_failures_by_dst[dst] <= attempts


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(scenario_params)
def test_nav_on_air_never_exceeds_protocol_max(params):
    from repro.phy.params import MAX_NAV_US

    s, _f1, _f2, _d = build_and_run(params, duration=0.15)
    # Patch-free check: inspect every frame actually put on the air.
    observed = []
    original = s.medium.transmit

    def spy(sender, frame, duration):
        observed.append(frame.duration)
        original(sender, frame, duration)

    s.medium.transmit = spy
    s.run(0.15)
    assert observed, "no frames were transmitted"
    assert all(0 <= d <= MAX_NAV_US for d in observed)


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10_000))
def test_determinism_same_seed_same_outcome(seed):
    def run_once():
        s = Scenario(seed=seed)
        s.add_wireless_node("a")
        s.add_wireless_node("b")
        s.add_wireless_node("c")
        s.add_wireless_node("d")
        f1, k1 = s.udp_flow("a", "b")
        f2, k2 = s.udp_flow("c", "d")
        f1.start()
        f2.start()
        s.run(0.2)
        return (k1.packets_received, k2.packets_received, s.sim.events_processed)

    assert run_once() == run_once()


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.integers(min_value=0, max_value=100),
    st.sampled_from([0.0, 2e-4, 1e-3]),
)
def test_tcp_receiver_never_overcounts(seed, ber):
    s = Scenario(seed=seed)
    s.add_wireless_node("a")
    s.add_wireless_node("b")
    if ber:
        s.error_model.set_ber_symmetric("a", "b", ber)
    snd, rcv = s.tcp_flow("a", "b")
    snd.start()
    s.run(0.5)
    assert rcv.segments_received <= snd.segments_sent
    # snd_nxt itself can fall BELOW rcv_next: a timeout rewinds it to snd_una
    # (go-back-N) even when the receiver already delivered the data but every
    # ACK was lost.  The invariant is against the sender's high-water mark.
    assert rcv.rcv_next <= snd.snd_max
    # Goodput bytes match counted segments exactly.
    assert rcv.bytes_received == rcv.segments_received * snd.mss
