"""Unit tests for the Equations (1)-(2) analytic model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import backoff_pmf, sending_probabilities, sending_ratio


def test_backoff_pmf_single_cw_is_uniform():
    pmf = backoff_pmf({31: 1.0})
    assert len(pmf) == 32
    for p in pmf.values():
        assert p == pytest.approx(1 / 32)
    assert sum(pmf.values()) == pytest.approx(1.0)


def test_backoff_pmf_mixture():
    pmf = backoff_pmf({1: 0.5, 3: 0.5})
    # i=0,1 get 0.5/2 + 0.5/4; i=2,3 get 0.5/4.
    assert pmf[0] == pytest.approx(0.375)
    assert pmf[3] == pytest.approx(0.125)
    assert sum(pmf.values()) == pytest.approx(1.0)


def test_backoff_pmf_rejects_negative_cw():
    with pytest.raises(ValueError):
        backoff_pmf({-1: 1.0})


def test_symmetric_at_zero_inflation():
    dist = {31: 1.0}
    p_gs, p_ns = sending_probabilities(dist, dist, 0.0)
    assert p_gs == pytest.approx(p_ns, rel=0.05)
    share_gs, share_ns = sending_ratio(dist, dist, 0.0)
    assert share_gs == pytest.approx(0.5, abs=0.02)


def test_gs_share_grows_with_inflation():
    dist = {31: 1.0}
    shares = [sending_ratio(dist, dist, v)[0] for v in (0, 5, 10, 20, 31)]
    assert shares == sorted(shares)
    assert shares[-1] > 0.95


def test_huge_inflation_gives_gs_certainty():
    dist = {31: 1.0}
    p_gs, p_ns = sending_probabilities(dist, dist, 100.0)
    assert p_gs == pytest.approx(1.0)
    assert p_ns == pytest.approx(0.0, abs=1e-9)


def test_ns_with_larger_cw_is_disadvantaged_even_without_inflation():
    p_gs, p_ns = sending_probabilities({31: 1.0}, {255: 1.0}, 0.0)
    assert p_gs > p_ns


def test_empty_distribution_rejected():
    with pytest.raises(ValueError):
        sending_probabilities({}, {31: 1.0}, 0.0)


def test_shares_sum_to_one():
    share_gs, share_ns = sending_ratio({31: 1.0}, {63: 0.5, 127: 0.5}, 7.0)
    assert share_gs + share_ns == pytest.approx(1.0)


@settings(deadline=None)  # large-CW PMFs take ~ms; flaky under CPU load
@given(
    st.dictionaries(
        st.sampled_from([15, 31, 63, 127, 255, 511, 1023]),
        st.floats(min_value=0.01, max_value=1.0),
        min_size=1,
        max_size=4,
    ),
    st.floats(min_value=0.0, max_value=50.0),
)
def test_property_probabilities_are_probabilities(raw_dist, v):
    total = sum(raw_dist.values())
    dist = {k: p / total for k, p in raw_dist.items()}
    p_gs, p_ns = sending_probabilities(dist, dist, v)
    assert -1e-9 <= p_gs <= 1.0 + 1e-9
    assert -1e-9 <= p_ns <= 1.0 + 1e-9
    # GS can only benefit from inflation relative to NS.
    assert p_gs >= p_ns - 1e-9
