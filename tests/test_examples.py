"""Every example script must run and demonstrate its headline effect."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "starved" in out
    assert "grabs the medium" in out


def test_hotspot_nav_inflation():
    out = run_example("hotspot_nav_inflation.py")
    assert "mallory owns the channel" in out
    assert "detections: {'mallory'" in out
    assert "Fairness restored" in out


def test_ack_spoofing_cafe():
    out = run_example("ack_spoofing_cafe.py")
    assert "spoofed ACKs transmitted" in out
    assert "GRC:" in out and "ignored" in out


def test_fake_ack_hidden_terminals():
    out = run_example("fake_ack_hidden_terminals.py")
    assert "DETECTED" in out


def test_autorate_interactions():
    out = run_example("autorate_interactions.py")
    assert "BACKFIRES" in out
    assert "pinned at" in out


def test_detection_dashboard():
    out = run_example("detection_dashboard.py")
    assert "GRC verdicts:" in out
    assert "nav-cheat:" in out
    assert "corroborated" in out
