"""The SINR interference medium: kernel properties and equivalence gates.

The channel-model seam makes two promises (DESIGN.md §15):

* the ``pairwise`` model — including when selected through the ambient
  :func:`~repro.phy.channel.use_channel` — replays every committed golden
  trace byte for byte;
* the ``sinr`` model reduces to the pairwise decodability decision when no
  interference is present, and its per-rate threshold arithmetic is exact
  and monotonic (hypothesis pins below).

Scenario-level checks close the loop: the hidden-terminal triangle shows
the classic RTS/CTS recovery, and the dense hotspot grid shows the two
models genuinely diverging once aggregate cross-cell interference matters.
"""

from __future__ import annotations

from pathlib import Path

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.experiments.common import run_hidden_node
from repro.net.scenario import Scenario
from repro.phy.channel import ChannelConfig, use_channel
from repro.phy.params import dot11a, dot11b
from repro.stats.trace import FrameTracer

GOLDEN_DIR = Path(__file__).parent / "golden"

finite = st.floats(
    min_value=1e-12, max_value=1e6, allow_nan=False, allow_infinity=False
)


# --------------------------------------------------------- kernel pins ----


@given(rate=st.sampled_from([1e6, 2e6, 5.5e6, 11e6]))
def test_sinr_threshold_floors_at_the_capture_threshold(rate):
    phy = dot11b()
    assert phy.sinr_threshold(rate) >= phy.capture_threshold


@given(margin=st.floats(min_value=1.0, max_value=100.0, allow_nan=False))
def test_sinr_threshold_is_monotonic_in_rate(margin):
    phy = dot11b()
    rates = sorted({1e6, 2e6, 5.5e6, 11e6})
    thresholds = [phy.sinr_threshold(rate, margin) for rate in rates]
    assert thresholds == sorted(thresholds)
    # Control frames fly at the basic rate: bare margin, no rate scaling.
    assert phy.sinr_threshold(phy.basic_rate, margin) == margin


def test_sinr_threshold_matches_the_rate_ratio():
    phy = dot11b()  # data 11 Mbps over basic 1 Mbps
    assert phy.sinr_threshold() == phy.capture_threshold * 11.0
    phy_a = dot11a()  # data and basic rate scale together here
    assert phy_a.sinr_threshold(phy_a.basic_rate) == phy_a.capture_threshold


@given(
    rss=st.lists(finite, min_size=1, max_size=8),
    interference=st.lists(finite, min_size=1, max_size=8),
    noise_floor=st.floats(min_value=1e-12, max_value=1e-3, allow_nan=False),
)
def test_sinr_array_is_exact_against_scalar_division(rss, interference, noise_floor):
    """IEEE-754 division is exact between numpy and CPython — the vectorized
    diagnostic must agree bit-for-bit with the scalar arithmetic."""
    pytest.importorskip("numpy")
    from repro.phy.vectorized import sinr_array

    n = min(len(rss), len(interference))
    rss, interference = rss[:n], interference[:n]
    out = sinr_array(rss, interference, noise_floor)
    for i in range(n):
        assert out[i] == rss[i] / (noise_floor + interference[i])


@given(
    rss=finite,
    threshold=st.floats(min_value=1.0, max_value=1e4, allow_nan=False),
    noise_floor=st.floats(min_value=1e-12, max_value=1e-3, allow_nan=False),
    powers=st.lists(finite, min_size=0, max_size=6),
)
def test_sinr_decision_is_monotonic_in_interference(rss, threshold, noise_floor, powers):
    """Adding interference power can only flip a decision from pass to fail.

    The sim decides ``rss >= threshold * (noise + interference)`` with a
    left-to-right sum; prefix sums are monotonically non-decreasing, so the
    decision is monotonically non-increasing along any arrival order.
    """
    decisions = []
    interference = 0.0
    for power in [0.0] + powers:
        interference += power
        decisions.append(rss >= threshold * (noise_floor + interference))
    for earlier, later in zip(decisions, decisions[1:]):
        assert earlier or not later  # once False, never True again


# ------------------------------------------------- equivalence contracts --


def _single_flow_trace(channel: ChannelConfig) -> bytes:
    import json

    s = Scenario(seed=5, channel=channel)
    s.add_wireless_node("S0", position=(0.0, 0.0))
    s.add_wireless_node("R0", position=(40.0, 0.0))
    tracer = FrameTracer(s.medium)
    src, _sink = s.udp_flow("S0", "R0")
    src.start()
    s.run(0.1)
    return "\n".join(
        json.dumps(record.to_dict(), sort_keys=True) for record in tracer.records
    ).encode()


def test_zero_interference_sinr_reduces_to_pairwise():
    """One flow, no overlap: the SINR margin must reproduce the pairwise
    trace byte for byte (noise floor sits far below the decode threshold)."""
    sinr = _single_flow_trace(ChannelConfig(model="sinr", ranges=(55.0, 99.0)))
    pairwise = _single_flow_trace(
        ChannelConfig(model="pairwise", ranges=(55.0, 99.0))
    )
    assert sinr == pairwise
    assert sinr  # a silent empty trace would vacuously pass


def test_ambient_pairwise_replays_every_committed_golden(tmp_path):
    """``ChannelConfig(model="pairwise")`` selected ambiently must replay the
    full committed golden set byte for byte — the scenarios that pin
    ``model="sinr"`` explicitly override the ambient and match their own
    goldens, so one sweep covers both halves of the §15 contract."""
    from repro.perf.golden import GOLDEN_TRACE_RUNS, capture_trace, trace_filename

    with use_channel(ChannelConfig(model="pairwise")):
        for name in sorted(GOLDEN_TRACE_RUNS):
            replay = tmp_path / trace_filename(name)
            capture_trace(name, replay)
            golden = (GOLDEN_DIR / trace_filename(name)).read_bytes()
            assert replay.read_bytes() == golden, f"{name} diverged"


# ----------------------------------------------------- scenario behavior --


def test_hidden_triangle_collapses_without_rts_and_recovers_with_it():
    off = run_hidden_node(1, 0.3, rts=False)
    on = run_hidden_node(1, 0.3, rts=True)
    assert off["rts_S0"] == off["rts_S1"] == 0.0
    assert on["rts_S0"] > 0 and on["rts_S1"] > 0
    # The acceptance shape: severalfold total-goodput recovery.
    assert on["goodput_total"] > 2.0 * off["goodput_total"]
    # Blind overlap shows up as escalated contention windows.
    assert off["cw_S0"] > on["cw_S0"]


def test_dense_hotspot_grid_diverges_between_the_models():
    """At 72 m cell spacing the aggregate interference at each AP differs
    from the pairwise capture approximation — equal seeds must produce
    measurably different goodput, or the SINR path is not actually wired."""
    from repro.campaign.builders import get_builder

    builder = get_builder("dense_hotspot_sinr")
    sinr = builder(1, 0.1, channel="sinr")
    pairwise = builder(1, 0.1, channel="pairwise")
    assert sinr != pairwise
    assert sinr["goodput_total"] > 0 and pairwise["goodput_total"] > 0
