"""The streaming-vs-offline detection gate: golden equivalence, the diff
harness itself, and the ``repro detect diff`` CLI."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import main
from repro.detect.diff import (
    DetectRun,
    canonical_event_lines,
    diff_detection,
    diff_fuzz_case,
    diff_golden_trace,
    diff_scenario_live,
    diff_trace_records,
    golden_trace_paths,
    run_offline,
    run_streaming,
    run_streaming_chunked,
)
from repro.core.detection.report import DetectionEvent
from repro.stats.trace import load_trace_jsonl

GOLDEN_DIR = Path(__file__).parent / "golden"


# --------------------------------------------------- golden equivalence ----


def test_every_committed_golden_trace_is_covered():
    paths = golden_trace_paths(GOLDEN_DIR)
    committed = {p.name for p in GOLDEN_DIR.glob("trace_*.jsonl")}
    assert {path.name for path in paths.values()} == committed


@pytest.mark.parametrize("name", sorted(golden_trace_paths(GOLDEN_DIR)))
def test_streaming_matches_offline_on_golden_trace(name):
    report = diff_golden_trace(name, golden_trace_paths(GOLDEN_DIR)[name])
    assert report.ok, "\n".join(report.problems)
    assert report.records > 0
    assert report.high_water <= report.bound


def test_live_scenario_diff_includes_the_tap_run():
    report = diff_scenario_live("grc_nav", duration_s=0.05)
    assert report.ok, "\n".join(report.problems)
    assert "live" in report.sources


@pytest.mark.parametrize("case_seed", range(3))
def test_fuzz_case_is_equivalent(case_seed):
    report = diff_fuzz_case(case_seed)
    assert report.ok, "\n".join(report.problems)


# ----------------------------------------------------- harness mechanics ----


@pytest.fixture(scope="module")
def records():
    return load_trace_jsonl(GOLDEN_DIR / golden_trace_paths(GOLDEN_DIR)["grc_nav"].name)


def test_offline_and_streaming_runs_fingerprint_identically(records):
    offline = run_offline(records)
    streaming = run_streaming(records)
    chunked = run_streaming_chunked(records)
    assert offline.event_lines == streaming.event_lines == chunked.event_lines
    assert offline.fingerprint == streaming.fingerprint == chunked.fingerprint
    # The whole point: bounded windows, not the whole trace.
    assert streaming.high_water < offline.high_water


def test_canonical_lines_are_order_independent():
    a = DetectionEvent(1.0, "nav", "monitor", "R1", "x")
    b = DetectionEvent(2.0, "impersonation", "monitor", "R2", "y")
    assert canonical_event_lines([a, b]) == canonical_event_lines([b, a])


def test_diff_reports_first_diverging_event(records):
    doctored = run_streaming(records)
    lines = list(doctored.event_lines)
    lines[0] = lines[0].replace("nav", "nva", 1)
    fake = DetectRun(
        source="streaming",
        event_lines=tuple(lines),
        records=doctored.records,
        high_water=doctored.high_water,
        bound=doctored.bound,
    )
    report = diff_trace_records(records, "doctored", extra_runs=(fake,))
    assert not report.ok
    assert any("diverge at canonical line" in p for p in report.problems)


def test_diff_flags_event_count_skew(records):
    truncated = run_streaming(records)
    fake = DetectRun(
        source="streaming",
        event_lines=truncated.event_lines[:-1],
        records=truncated.records,
        high_water=truncated.high_water,
        bound=truncated.bound,
    )
    report = diff_trace_records(records, "skewed", extra_runs=(fake,))
    assert any("event count differs" in p for p in report.problems)


def test_diff_flags_memory_bound_violation(records):
    run = run_streaming(records)
    bloated = DetectRun(
        source="streaming",
        event_lines=run.event_lines,
        records=run.records,
        high_water=run.bound + 1,
        bound=run.bound,
    )
    report = diff_trace_records(records, "bloated", extra_runs=(bloated,))
    assert any("memory bound violated" in p for p in report.problems)


def test_missing_golden_file_is_a_problem(tmp_path):
    reports = diff_detection(targets=["grc_nav"], golden_dir=tmp_path)
    golden_tier = [r for r in reports if r.kind == "golden"]
    assert golden_tier and not golden_tier[0].ok
    assert "missing golden trace" in golden_tier[0].problems[0]


def test_unknown_target_raises():
    with pytest.raises(KeyError, match="unknown detect diff target"):
        diff_detection(targets=["no_such_thing"], golden_dir=GOLDEN_DIR)


# ------------------------------------------------------------------- CLI ----


def test_cli_detect_diff_passes_on_named_targets(capsys):
    assert main(["detect", "diff", "grc_nav", "fault_jammer"]) == 0
    out = capsys.readouterr().out
    assert "streaming detection matches offline" in out


def test_cli_detect_diff_rejects_unknown_target(capsys):
    assert main(["detect", "diff", "no_such_target"]) == 2
    assert "unknown detect diff target" in capsys.readouterr().err
