"""Property tests for the deterministic shard planner.

The planner's contract (DESIGN.md §13): for any spec and any N, the shard
assignment is a *partition* of the expanded grid (every point in exactly one
shard), deterministic across processes, balanced to within one point, and a
pure function of the spec — so a re-derived plan (e.g. in a re-dispatched
worker, or after a spec round-trips through JSON) is identical.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign.spec import (
    expand_grid,
    point_id,
    spec_from_dict,
    spec_hash,
    spec_to_dict,
)
from repro.fleet import FleetError, plan_shards


def _spec(n_greedy=(0, 1), navs=(0.0, 300.0, 600.0), seeds=(1, 2)):
    return spec_from_dict(
        {
            "campaign": {
                "name": "plan-test",
                "builder": "nav_pairs",
                "seeds": list(seeds),
                "duration_s": 1.0,
            },
            "params": {"transport": "udp"},
            "sweep": {"n_greedy": list(n_greedy)},
            "zip": {"nav_inflation_us": list(navs)},
        }
    )


# Axis values drawn so every (n_greedy, nav) pair is distinct -> distinct
# point ids; grids range from 1x1 to 4x6 = 24 points.
grids = st.tuples(
    st.lists(st.sampled_from([0, 1, 2, 3]), min_size=1, max_size=4, unique=True),
    st.lists(
        st.sampled_from([0.0, 100.0, 200.0, 300.0, 400.0, 600.0]),
        min_size=1,
        max_size=6,
        unique=True,
    ),
)


@settings(max_examples=40, deadline=None)
@given(grid=grids, n_shards=st.integers(min_value=1, max_value=7))
def test_plan_is_a_balanced_partition_for_any_n(grid, n_shards):
    spec = _spec(n_greedy=grid[0], navs=grid[1])
    ids = [point_id(params) for params in expand_grid(spec)]
    plan = plan_shards(spec, n_shards)

    assert plan.n_shards == n_shards
    assert plan.spec_hash == spec_hash(spec)
    # Partition: every grid point in exactly one shard, nothing extra.
    flattened = [pid for shard in plan.shards for pid in shard]
    assert sorted(flattened) == sorted(ids)
    assert len(flattened) == len(set(flattened))
    # Balanced: shard sizes differ by at most one.
    sizes = [len(shard) for shard in plan.shards]
    assert max(sizes) - min(sizes) <= 1
    # Within a shard, points keep global grid order.
    order = {pid: index for index, pid in enumerate(ids)}
    for shard in plan.shards:
        assert list(shard) == sorted(shard, key=order.__getitem__)


@settings(max_examples=25, deadline=None)
@given(grid=grids, n_shards=st.integers(min_value=1, max_value=7))
def test_plan_is_deterministic_and_survives_spec_round_trip(grid, n_shards):
    spec = _spec(n_greedy=grid[0], navs=grid[1])
    first = plan_shards(spec, n_shards)
    again = plan_shards(spec, n_shards)
    assert first == again
    # The JSON document a fleet run ships to workers re-derives the same plan.
    round_tripped = spec_from_dict(spec_to_dict(spec))
    assert plan_shards(round_tripped, n_shards) == first


def test_single_shard_is_the_whole_grid_in_order():
    spec = _spec()
    plan = plan_shards(spec, 1)
    assert list(plan.shards[0]) == [point_id(p) for p in expand_grid(spec)]


def test_more_shards_than_points_leaves_empties():
    spec = _spec(n_greedy=(0,), navs=(0.0, 300.0))  # 2 points
    plan = plan_shards(spec, 5)
    assert plan.n_points == 2
    assert len(plan.nonempty()) == 2
    assert all(len(shard) <= 1 for shard in plan.shards)


def test_shard_of_finds_every_point():
    spec = _spec()
    plan = plan_shards(spec, 3)
    for shard_index, shard in enumerate(plan.shards):
        for pid in shard:
            assert plan.shard_of(pid) == shard_index
    with pytest.raises(KeyError):
        plan.shard_of("not-a-point")


def test_invalid_shard_count_is_refused():
    with pytest.raises(FleetError):
        plan_shards(_spec(), 0)


def test_assignment_changes_with_spec_hash():
    """Different specs spread points differently (keyed, not positional)."""
    a = plan_shards(_spec(seeds=(1, 2)), 2)
    b = plan_shards(_spec(seeds=(1, 3)), 2)
    assert a.spec_hash != b.spec_hash
    # Same grid => same ids, but the assignment is keyed by spec hash, so the
    # two plans carry the same points regardless of how they are dealt.
    assert sorted(pid for s in a.shards for pid in s) == sorted(
        pid for s in b.shards for pid in s
    )
