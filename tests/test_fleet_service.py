"""HTTP round trip against a live fleet service: submit -> poll -> fetch.

The service runs on its own event loop in a daemon thread
(:class:`repro.fleet.ServiceThread`) and the tests talk to it over real
sockets with the urllib client — the same path CI's fleet-smoke job and
``repro fleet submit`` use.
"""

from __future__ import annotations

import json
import urllib.request

import pytest

pytest.importorskip("tomllib", reason="TOML campaign specs need Python 3.11+")

from repro.campaign import run_campaign
from repro.campaign.spec import spec_from_dict
from repro.cli import main
from repro.fleet import (
    FleetClientError,
    ServiceThread,
    fetch_results,
    get_json,
    poll_job,
    submit_job,
)

SPEC_DOC = {
    "campaign": {
        "name": "svc_small",
        "builder": "nav_pairs",
        "seeds": [1, 2],
        "duration_s": 0.15,
    },
    "params": {"transport": "udp"},
    "sweep": {"n_greedy": [0, 1]},
}


@pytest.fixture()
def service(tmp_path):
    with ServiceThread(tmp_path / "fleet-root", executor="local") as thread:
        yield f"http://127.0.0.1:{thread.port}"


def test_submit_poll_fetch_round_trip(tmp_path, service):
    single = tmp_path / "single"
    run_campaign(spec_from_dict(SPEC_DOC), out_dir=single)

    job = submit_job(service, {"spec": SPEC_DOC, "n_shards": 2})
    assert job.endswith("-svc_small")
    status = poll_job(service, job, timeout_s=120)
    assert status["status"] == "done"
    fleet = status["fleet"]
    assert fleet["complete"] and fleet["merged"]
    assert fleet["n_shards"] == 2
    assert {shard["status"] for shard in fleet["shards"]} == {"done"}

    csv_text = fetch_results(service, job)
    assert csv_text.encode() == (single / "results.csv").read_bytes()

    index = get_json(service, "/jobs")
    assert [entry["job"] for entry in index] == [job]


def test_status_includes_per_shard_progress_fields(service):
    job = submit_job(service, {"spec": SPEC_DOC, "n_shards": 2})
    status = poll_job(service, job, timeout_s=120)
    for shard in status["fleet"]["shards"]:
        assert set(shard) >= {"shard", "status", "attempts", "done", "retries"}


def test_telemetry_endpoint_merges_point_snapshots(service):
    doc = dict(SPEC_DOC)
    job = submit_job(service, {"spec": doc, "n_shards": 2})
    poll_job(service, job, timeout_s=120)
    # This spec captured no telemetry -> 404 with a readable message.
    with pytest.raises(FleetClientError, match="404"):
        get_json(service, f"/jobs/{job}/telemetry")


def test_results_before_merge_is_409(service):
    job = submit_job(service, {"spec": SPEC_DOC, "n_shards": 2})
    # Immediately after submit the merge cannot have happened yet (and if the
    # race is ever lost, the fetch simply succeeds and the test still holds).
    try:
        fetch_results(service, job)
    except FleetClientError as exc:
        assert "409" in str(exc)
    poll_job(service, job, timeout_s=120)


def test_healthz_and_unknown_routes(service):
    assert get_json(service, "/healthz") == {"ok": True}
    with pytest.raises(FleetClientError, match="404"):
        get_json(service, "/jobs/no-such-job")
    with pytest.raises(FleetClientError, match="404"):
        get_json(service, "/definitely-not-a-route")


def test_bad_submissions_are_400(service):
    with pytest.raises(FleetClientError, match="400"):
        submit_job(service, {"n_shards": 2})  # no spec
    with pytest.raises(FleetClientError, match="400"):
        submit_job(service, {"spec": {"bogus": 1}})  # invalid spec document
    with pytest.raises(FleetClientError, match="400"):
        submit_job(service, {"spec": SPEC_DOC, "n_shards": 0})
    # Raw invalid JSON body.
    request = urllib.request.Request(
        service + "/jobs", data=b"{not json", method="POST"
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=30)
    assert excinfo.value.code == 400


def test_cli_submit_wait_fetches_results(tmp_path, service, capsys):
    spec_path = tmp_path / "svc_small.toml"
    spec_path.write_text(
        """\
[campaign]
name = "svc_small"
builder = "nav_pairs"
seeds = [1, 2]
duration_s = 0.15

[params]
transport = "udp"

[sweep]
n_greedy = [0, 1]
"""
    )
    out_csv = tmp_path / "fetched.csv"
    code = main(
        [
            "fleet", "submit", str(spec_path),
            "--url", service, "--shards", "2", "--wait", "-o", str(out_csv),
        ]
    )
    assert code == 0
    text = capsys.readouterr().out
    assert "submitted job" in text

    single = tmp_path / "single"
    run_campaign(spec_from_dict(SPEC_DOC), out_dir=single)
    assert out_csv.read_bytes() == (single / "results.csv").read_bytes()
