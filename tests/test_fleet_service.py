"""HTTP round trip against a live fleet service: submit -> poll -> fetch.

The service runs on its own event loop in a daemon thread
(:class:`repro.fleet.ServiceThread`) and the tests talk to it over real
sockets with the urllib client — the same path CI's fleet-smoke job and
``repro fleet submit`` use.  The second half exercises the robustness
surface: queue admission (429 + Retry-After), cancellation, pagination,
oversized bodies, and the /queue and /status operator endpoints.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

pytest.importorskip("tomllib", reason="TOML campaign specs need Python 3.11+")

from repro.campaign import run_campaign
from repro.campaign.spec import spec_from_dict
from repro.cli import main
from repro.fleet import (
    FleetClientError,
    ServiceThread,
    cancel_job,
    fetch_results,
    get_json,
    submit_job,
    wait_for_job,
)

SPEC_DOC = {
    "campaign": {
        "name": "svc_small",
        "builder": "nav_pairs",
        "seeds": [1, 2],
        "duration_s": 0.15,
    },
    "params": {"transport": "udp"},
    "sweep": {"n_greedy": [0, 1]},
}

#: A spec that holds a concurrency slot long enough for queue tests to
#: observe "running" deterministically.
SLOW_SPEC_DOC = {
    "campaign": {
        "name": "svc_slow",
        "builder": "nav_pairs",
        "seeds": [1, 2, 3],
        "duration_s": 1.0,
    },
    "params": {"transport": "udp"},
    "sweep": {"n_greedy": [0, 1]},
}


@pytest.fixture()
def service(tmp_path):
    with ServiceThread(tmp_path / "fleet-root", executor="local") as thread:
        yield f"http://127.0.0.1:{thread.port}"


def test_submit_poll_fetch_round_trip(tmp_path, service):
    single = tmp_path / "single"
    run_campaign(spec_from_dict(SPEC_DOC), out_dir=single)

    job = submit_job(service, {"spec": SPEC_DOC, "n_shards": 2})
    assert job.endswith("-svc_small")
    status = wait_for_job(service, job, timeout_s=120)
    assert status["status"] == "done"
    fleet = status["fleet"]
    assert fleet["complete"] and fleet["merged"]
    assert fleet["n_shards"] == 2
    assert {shard["status"] for shard in fleet["shards"]} == {"done"}
    assert status["shard_attempts"] == {"0": 1, "1": 1}

    csv_text = fetch_results(service, job)
    assert csv_text.encode() == (single / "results.csv").read_bytes()

    index = get_json(service, "/jobs")
    assert [entry["job"] for entry in index["jobs"]] == [job]
    assert index["total"] == 1


def test_status_includes_per_shard_progress_fields(service):
    job = submit_job(service, {"spec": SPEC_DOC, "n_shards": 2})
    status = wait_for_job(service, job, timeout_s=120)
    for shard in status["fleet"]["shards"]:
        assert set(shard) >= {"shard", "status", "attempts", "done", "retries"}


def test_telemetry_endpoint_merges_point_snapshots(service):
    doc = dict(SPEC_DOC)
    job = submit_job(service, {"spec": doc, "n_shards": 2})
    wait_for_job(service, job, timeout_s=120)
    # This spec captured no telemetry -> 404 with a readable message.
    with pytest.raises(FleetClientError, match="404"):
        get_json(service, f"/jobs/{job}/telemetry")


def test_results_before_merge_is_409(service):
    job = submit_job(service, {"spec": SPEC_DOC, "n_shards": 2})
    # Immediately after submit the merge cannot have happened yet (and if the
    # race is ever lost, the fetch simply succeeds and the test still holds).
    try:
        fetch_results(service, job)
    except FleetClientError as exc:
        assert "409" in str(exc)
    wait_for_job(service, job, timeout_s=120)


def test_healthz_and_unknown_routes(service):
    assert get_json(service, "/healthz") == {"ok": True}
    with pytest.raises(FleetClientError, match="404"):
        get_json(service, "/jobs/no-such-job")
    with pytest.raises(FleetClientError, match="404"):
        get_json(service, "/definitely-not-a-route")


def test_bad_submissions_are_400(service):
    with pytest.raises(FleetClientError, match="400"):
        submit_job(service, {"n_shards": 2})  # no spec
    with pytest.raises(FleetClientError, match="400"):
        submit_job(service, {"spec": {"bogus": 1}})  # invalid spec document
    with pytest.raises(FleetClientError, match="400"):
        submit_job(service, {"spec": SPEC_DOC, "n_shards": 0})
    with pytest.raises(FleetClientError, match="400"):
        submit_job(service, {"spec": SPEC_DOC, "priority": "high"})
    # Raw invalid JSON body.
    request = urllib.request.Request(
        service + "/jobs", data=b"{not json", method="POST"
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=30)
    assert excinfo.value.code == 400


def test_oversized_body_is_413(tmp_path):
    with ServiceThread(
        tmp_path / "root", executor="local", max_body=1024
    ) as thread:
        url = f"http://127.0.0.1:{thread.port}"
        request = urllib.request.Request(
            url + "/jobs", data=b"x" * 2048, method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 413


def test_jobs_index_is_paginated(service):
    jobs = [submit_job(service, {"spec": SPEC_DOC, "n_shards": 2}) for _ in range(3)]
    for job in jobs:
        wait_for_job(service, job, timeout_s=120)
    page = get_json(service, "/jobs?limit=2")
    assert page["total"] == 3 and len(page["jobs"]) == 2
    # Newest first; offset walks backwards through history.
    assert page["jobs"][0]["job"] == jobs[-1]
    rest = get_json(service, "/jobs?limit=2&offset=2")
    assert [entry["job"] for entry in rest["jobs"]] == [jobs[0]]
    with pytest.raises(FleetClientError, match="400"):
        get_json(service, "/jobs?limit=0")


def test_queue_full_429_cancel_and_queue_endpoint(tmp_path):
    with ServiceThread(
        tmp_path / "root", executor="local", max_running=1, max_queue=1
    ) as thread:
        url = f"http://127.0.0.1:{thread.port}"
        first = submit_job(url, {"spec": SLOW_SPEC_DOC, "n_shards": 1}, retry=None)
        queued = submit_job(
            url, {"spec": SLOW_SPEC_DOC, "n_shards": 1, "priority": 5}, retry=None
        )
        # Slot busy + queue full -> 429 with Retry-After, observed raw.
        body = json.dumps({"spec": SPEC_DOC, "n_shards": 1}).encode()
        request = urllib.request.Request(url + "/jobs", data=body, method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 429
        assert excinfo.value.headers.get("Retry-After") is not None

        queue = get_json(url, "/queue")
        assert queue["depth"] == 1 and queue["max_queue"] == 1
        assert queue["entries"][0] == {"job": queued, "priority": 5, "position": 0}
        assert queue["max_running"] == 1

        # Cancelling the queued job frees the admission slot immediately.
        assert cancel_job(url, queued) == {"job": queued, "status": "cancelled"}
        assert get_json(url, f"/jobs/{queued}")["status"] == "cancelled"
        third = submit_job(url, {"spec": SPEC_DOC, "n_shards": 1}, retry=None)

        # A terminal job can no longer be cancelled.
        with pytest.raises(FleetClientError, match="409"):
            cancel_job(url, queued, retry=None)
        with pytest.raises(FleetClientError, match="404"):
            cancel_job(url, "no-such-job", retry=None)

        status = get_json(url, "/status")
        assert status["max_running"] == 1 and status["max_queue"] == 1
        assert status["journal"]["seq"] > 0
        assert not status["draining"]

        for job in (first, third):
            assert wait_for_job(url, job, timeout_s=120)["status"] == "done"


def test_priority_orders_the_queue(tmp_path):
    with ServiceThread(
        tmp_path / "root", executor="local", max_running=1, max_queue=4
    ) as thread:
        url = f"http://127.0.0.1:{thread.port}"
        blocker = submit_job(url, {"spec": SLOW_SPEC_DOC, "n_shards": 1})
        low = submit_job(url, {"spec": SPEC_DOC, "n_shards": 1, "priority": 0})
        high = submit_job(url, {"spec": SPEC_DOC, "n_shards": 1, "priority": 9})
        queue = get_json(url, "/queue")
        assert [entry["job"] for entry in queue["entries"]] == [high, low]
        assert get_json(url, f"/jobs/{high}")["queue_position"] == 0
        for job in (blocker, low, high):
            assert wait_for_job(url, job, timeout_s=120)["status"] == "done"


def test_cancel_running_job_stops_it(tmp_path):
    with ServiceThread(tmp_path / "root", executor="local") as thread:
        url = f"http://127.0.0.1:{thread.port}"
        job = submit_job(url, {"spec": SLOW_SPEC_DOC, "n_shards": 1})
        reply = cancel_job(url, job)
        assert reply["status"] == "cancelled"
        status = wait_for_job(url, job, timeout_s=60)
        assert status["status"] == "cancelled"


def test_cli_submit_wait_fetches_results(tmp_path, service, capsys):
    spec_path = tmp_path / "svc_small.toml"
    spec_path.write_text(
        """\
[campaign]
name = "svc_small"
builder = "nav_pairs"
seeds = [1, 2]
duration_s = 0.15

[params]
transport = "udp"

[sweep]
n_greedy = [0, 1]
"""
    )
    out_csv = tmp_path / "fetched.csv"
    code = main(
        [
            "fleet", "submit", str(spec_path),
            "--url", service, "--shards", "2", "--wait", "-o", str(out_csv),
        ]
    )
    assert code == 0
    text = capsys.readouterr().out
    assert "submitted job" in text

    single = tmp_path / "single"
    run_campaign(spec_from_dict(SPEC_DOC), out_dir=single)
    assert out_csv.read_bytes() == (single / "results.csv").read_bytes()


def test_cli_fleet_status_url_and_cancel(tmp_path, service, capsys):
    job = submit_job(service, {"spec": SPEC_DOC, "n_shards": 2})
    wait_for_job(service, job, timeout_s=120)
    assert main(["fleet", "status", "--url", service]) == 0
    text = capsys.readouterr().out
    assert "queue:" in text and "journal:" in text
    assert main(["fleet", "status", "--url", service, "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["jobs"]["total"] == 1
    # Cancelling a finished job via the CLI surfaces the 409 cleanly.
    assert main(["fleet", "cancel", job, "--url", service]) == 2
    assert "409" in capsys.readouterr().err
    assert main(["fleet", "status"]) == 2
