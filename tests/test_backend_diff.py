"""Cross-backend differential gate for the vectorized simulation backend.

Three layers of enforcement, mirroring the equivalence contract in
:mod:`repro.sim.backend`:

1. **Golden replay** — the vectorized backend must reproduce the committed
   scalar-captured traces and campaign metrics byte-for-byte / float-exact
   (it registered no ``trace_suffix``, so it gets no golden set of its own).
2. **Differential harness** — :mod:`repro.perf.diff` must catch every kind
   of divergence it claims to (trace bytes, metrics, event counts,
   experiment documents), proven against deliberately-corrupted runs.
3. **Selection plumbing** — registry lookup, ambient ContextVar selection,
   ``Scenario(backend=...)``, ``RunSettings.backend`` and the
   backend-keyed result-cache token.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest

from repro.perf.diff import (
    BackendRun,
    diff_backend_runs,
    diff_experiment,
    diff_scenario,
    run_traced,
)
from repro.perf.golden import (
    GOLDEN_TRACE_RUNS,
    METRICS_FILENAME,
    capture_trace,
    compare_metrics,
    run_golden_campaigns,
    trace_filename,
)
from repro.sim.backend import (
    BACKENDS,
    SimBackend,
    backend_names,
    current_backend,
    numpy_available,
    resolve_backend,
    use_backend,
)

GOLDEN_DIR = Path(__file__).parent / "golden"

needs_numpy = pytest.mark.skipif(not numpy_available(), reason="numpy not installed")


# ---------------------------------------------------------- golden replay --


@needs_numpy
@pytest.mark.parametrize("name", sorted(GOLDEN_TRACE_RUNS))
def test_vectorized_replays_scalar_goldens_byte_for_byte(name, tmp_path):
    replay_path = tmp_path / trace_filename(name)
    records = capture_trace(name, replay_path, backend="vectorized")
    assert records > 100
    golden = (GOLDEN_DIR / trace_filename(name)).read_bytes()
    replay = replay_path.read_bytes()
    if golden != replay:
        g_lines = golden.decode().splitlines()
        r_lines = replay.decode().splitlines()
        for i, (g, r) in enumerate(zip(g_lines, r_lines)):
            assert g == r, (
                f"{name}: vectorized diverges at trace record {i}:\n"
                f"  golden:     {g}\n  vectorized: {r}"
            )
        pytest.fail(
            f"{name}: traces differ in length ({len(g_lines)} vs {len(r_lines)})"
        )


@needs_numpy
def test_vectorized_campaign_metrics_are_bit_identical(tmp_path):
    """Full-figure float equality through the real campaign runner."""
    golden = json.loads((GOLDEN_DIR / METRICS_FILENAME).read_text())
    with use_backend("vectorized"):
        current = run_golden_campaigns(tmp_path)
    problems = compare_metrics(golden, current)
    assert not problems, "vectorized campaign metrics diverged:\n" + "\n".join(
        problems[:20]
    )


# ----------------------------------------------------- differential harness --


@needs_numpy
def test_diff_scenario_reports_identical_backends():
    report = diff_scenario("fig1_nav_udp", duration_s=0.05)
    assert report.ok, "\n".join(report.problems)
    assert report.kind == "scenario"
    assert report.backends == ("scalar", "vectorized")
    fingerprints = set(report.fingerprints.values())
    assert len(fingerprints) == 1, "identical runs must share one fingerprint"
    assert "identical" in report.summary_line()


def _tamper(run: BackendRun, **changes) -> BackendRun:
    return dataclasses.replace(run, backend="tampered", **changes)


def test_diff_backend_runs_catches_every_divergence_kind():
    reference = run_traced("fig1_nav_udp", backend="scalar", duration_s=0.02)
    assert diff_backend_runs(reference, _tamper(reference)) == []

    lines = list(reference.trace_lines)
    lines[3] = lines[3].replace('"sender": "', '"sender": "X')
    problems = diff_backend_runs(reference, _tamper(reference, trace_lines=tuple(lines)))
    assert any("trace diverges at record 4" in p for p in problems)

    truncated = _tamper(reference, trace_lines=reference.trace_lines[:-1])
    problems = diff_backend_runs(reference, truncated)
    assert any("trace length differs" in p for p in problems)

    metrics = dict(reference.metrics)
    key = sorted(metrics)[0]
    metrics[key] += 1.0
    problems = diff_backend_runs(reference, _tamper(reference, metrics=metrics))
    assert any(f"metric {key}" in p for p in problems)

    problems = diff_backend_runs(reference, _tamper(reference, events=reference.events + 1))
    assert any("events_processed" in p for p in problems)

    different_fingerprint = _tamper(reference, events=reference.events + 1)
    assert different_fingerprint.fingerprint != reference.fingerprint


def test_diff_experiment_compares_canonical_documents(monkeypatch):
    """Document-level diffing, proven against a registry double.

    A fake experiment whose rows depend on the selected backend must be
    flagged with the exact row/column that diverged; one whose rows do not
    must pass.  (Real experiments ride the slow fuzz tier — quick mode
    still simulates seconds of airtime each.)
    """
    from repro.stats.summary import ExperimentResult

    def make_entry(divergent):
        class Entry:
            @staticmethod
            def runner(settings):
                result = ExperimentResult("fake", "d", ["backend_bias", "goodput"])
                bias = 1.0
                if divergent and settings.backend == "vectorized":
                    bias = 2.0
                result.add_row(backend_bias=bias, goodput=3.25)
                return result

        return Entry()

    import repro.experiments

    monkeypatch.setattr(
        repro.experiments, "get_entry", lambda _id: make_entry(divergent=False)
    )
    report = diff_experiment("fake")
    assert report.ok and report.kind == "experiment"
    assert len(set(report.fingerprints.values())) == 1

    monkeypatch.setattr(
        repro.experiments, "get_entry", lambda _id: make_entry(divergent=True)
    )
    report = diff_experiment("fake")
    assert not report.ok
    assert any("row 0 column 'backend_bias'" in p for p in report.problems)
    assert len(set(report.fingerprints.values())) == 2

    with pytest.raises(ValueError):
        diff_experiment("fake", backends=["scalar"])


# ------------------------------------------------------ selection plumbing --


def test_backend_registry_and_resolution():
    assert backend_names() == ["scalar", "vectorized"]
    assert BACKENDS["scalar"].is_reference
    assert not BACKENDS["vectorized"].is_reference
    assert resolve_backend(None).name == current_backend().name
    assert resolve_backend("scalar") is BACKENDS["scalar"]
    assert resolve_backend(BACKENDS["scalar"]) is BACKENDS["scalar"]
    with pytest.raises(KeyError, match="unknown simulation backend"):
        resolve_backend("turbo")
    with pytest.raises(TypeError):
        resolve_backend(42)


def test_use_backend_is_scoped_and_nestable():
    assert current_backend().name == "scalar"
    with use_backend("vectorized" if numpy_available() else "scalar") as outer:
        assert current_backend() is outer
        with use_backend("scalar"):
            assert current_backend().name == "scalar"
        assert current_backend() is outer
    assert current_backend().name == "scalar"


@needs_numpy
def test_scenario_backend_override_builds_vectorized_medium():
    from repro.net.scenario import Scenario
    from repro.phy.medium import Medium, VectorizedMedium

    explicit = Scenario(seed=1, backend="vectorized")
    assert isinstance(explicit.medium, VectorizedMedium)
    explicit.add_wireless_node("A")
    assert explicit.macs["A"]._delay_tables is not None

    ambient = Scenario(seed=1)
    assert type(ambient.medium) is Medium
    ambient.add_wireless_node("A")
    assert ambient.macs["A"]._delay_tables is None

    with use_backend("vectorized"):
        inherited = Scenario(seed=1)
    assert isinstance(inherited.medium, VectorizedMedium)


def test_run_settings_backend_validates_eagerly():
    from repro.experiments.common import RunSettings

    assert RunSettings().backend is None
    assert RunSettings.quick().replace(backend="scalar").backend == "scalar"
    with pytest.raises(KeyError, match="unknown simulation backend"):
        RunSettings(backend="turbo")


def test_cache_token_shared_for_bit_exact_backends_only():
    from repro.runtime.cache import code_version_token

    reference = code_version_token()
    with use_backend("scalar"):
        assert code_version_token() == reference
    if numpy_available():
        # Bit-exact backends are interchangeable in the result cache.
        with use_backend("vectorized"):
            assert code_version_token() == reference
    # A backend with its own golden set gets its own cache namespace.
    forked = SimBackend("forked", "test-only", trace_suffix="forked")
    assert forked.cache_key == "backend=forked"
    with use_backend(forked):
        assert code_version_token() != reference
    assert code_version_token() == reference


# ----------------------------------------------------------------- CLI ------


def test_cli_diff_identical(capsys):
    from repro.cli import main

    assert main(["diff", "fig1_nav_udp", "--duration", "0.02"]) == 0
    out = capsys.readouterr()
    assert "identical across scalar vs vectorized" in out.out


def test_cli_diff_rejects_bad_input(capsys):
    from repro.cli import main

    assert main(["diff", "no_such_target", "--duration", "0.02"]) == 2
    assert main(["diff", "--backends", "scalar", "scalar"]) == 2
    assert main(["diff", "--list-backends"]) == 0
    out = capsys.readouterr()
    assert "scalar" in out.out and "vectorized" in out.out


def test_cli_perf_backend_flag(tmp_path, capsys):
    from repro.cli import main

    out_path = tmp_path / "bench.json"
    code = main(
        [
            "perf", "fig1_nav_udp",
            "--backend", "vectorized" if numpy_available() else "scalar",
            "--duration", "0.02", "--repeats", "1", "-o", str(out_path),
        ]
    )
    assert code == 0
    document = json.loads(out_path.read_text())
    assert document["backend"] in backend_names()
    capsys.readouterr()
    assert main(["perf", "fig1_nav_udp", "--backend", "turbo"]) == 2
    err = capsys.readouterr().err
    assert "unknown simulation backend" in err
