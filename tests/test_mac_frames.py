"""Unit tests for frame construction and NAV arithmetic."""

import pytest

from repro.mac.frames import (
    Frame,
    FrameKind,
    ack_duration,
    cts_duration_from_rts,
    data_duration,
    expected_cts_nav,
    frame_size,
    max_cts_nav,
    rts_duration,
)
from repro.phy.params import MAX_NAV_US, dot11b


def test_rts_nav_covers_the_whole_exchange():
    phy = dot11b()
    nav = rts_duration(phy, 1024)
    expected = 3 * phy.sifs + phy.cts_time + phy.data_time(1024) + phy.ack_time
    assert nav == pytest.approx(expected)


def test_cts_nav_subtracts_sifs_and_cts():
    phy = dot11b()
    rts_nav = rts_duration(phy, 1024)
    cts_nav = cts_duration_from_rts(phy, rts_nav)
    assert cts_nav == pytest.approx(rts_nav - phy.sifs - phy.cts_time)
    # Degenerate RTS NAV never yields a negative CTS NAV.
    assert cts_duration_from_rts(phy, 0.0) == 0.0


def test_data_and_ack_navs():
    phy = dot11b()
    assert data_duration(phy) == pytest.approx(phy.sifs + phy.ack_time)
    assert ack_duration() == 0.0


def test_expected_cts_nav_matches_honest_receiver():
    phy = dot11b()
    rts_nav = rts_duration(phy, 500)
    assert expected_cts_nav(phy, rts_nav) == cts_duration_from_rts(phy, rts_nav)


def test_max_cts_nav_uses_mtu():
    phy = dot11b()
    bound = max_cts_nav(phy, 1500)
    assert bound == pytest.approx(2 * phy.sifs + phy.data_time(1500) + phy.ack_time)
    # The MTU bound covers any real payload up to the MTU.
    assert bound > cts_duration_from_rts(phy, rts_duration(phy, 1064))


def test_frame_clamps_duration_to_protocol_max():
    frame = Frame(FrameKind.CTS, "a", "b", 1e9, 14)
    assert frame.duration == float(MAX_NAV_US)


def test_frame_rejects_negative_duration():
    with pytest.raises(ValueError):
        Frame(FrameKind.CTS, "a", "b", -1.0, 14)


def test_frame_sizes():
    assert frame_size(FrameKind.RTS) == 20
    assert frame_size(FrameKind.CTS) == 14
    assert frame_size(FrameKind.ACK) == 14
    assert frame_size(FrameKind.DATA, 1024) == 28 + 1024
