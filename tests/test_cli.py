"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig1" in out
    assert "table9" in out
    assert "ext_autorate" in out


def test_run_unknown_experiment(capsys):
    assert main(["run", "fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_run_quick_experiment(capsys):
    assert main(["run", "table3", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "Table III" in out
    assert "fer_tcp_data" in out


def test_run_writes_output_file(tmp_path, capsys):
    target = tmp_path / "out.txt"
    assert main(["run", "table3", "--quick", "-o", str(target)]) == 0
    assert "Table III" in target.read_text()
    assert str(target) in capsys.readouterr().out


@pytest.mark.parametrize("kind", ["nav", "spoof", "fake"])
def test_demo_runs(kind, capsys):
    assert main(["demo", kind, "--duration", "0.5"]) == 0
    out = capsys.readouterr().out
    assert "victim" in out
    assert "attacker" in out
    assert "|" in out  # sparkline rendered


def test_demo_nav_with_grc_reports_offender(capsys):
    assert main(["demo", "nav", "--grc", "--duration", "1.0"]) == 0
    out = capsys.readouterr().out
    assert "detections" in out
    assert "GR" in out


def test_demo_attack_works_without_grc(capsys):
    assert main(["demo", "nav", "--duration", "1.0", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    victim_line = next(line for line in out.splitlines() if "victim" in line)
    attacker_line = next(line for line in out.splitlines() if "attacker" in line)
    victim_mbps = float(victim_line.split()[1])
    attacker_mbps = float(attacker_line.split()[1])
    assert attacker_mbps > 5 * max(victim_mbps, 1e-3)
