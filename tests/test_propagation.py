"""Unit tests for the propagation model."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.phy.propagation import PathLossModel, distance, rss_to_db


def test_rss_decays_with_distance():
    model = PathLossModel()
    rss = [model.rss(1.0, d) for d in (1, 10, 50, 100)]
    assert rss == sorted(rss, reverse=True)


def test_rss_clamps_below_reference_distance():
    model = PathLossModel(reference_distance=1.0)
    assert model.rss(1.0, 0.0) == model.rss(1.0, 0.5) == model.rss(1.0, 1.0)


def test_fourth_power_law():
    model = PathLossModel(exponent=4.0)
    assert model.rss(1.0, 20.0) / model.rss(1.0, 40.0) == pytest.approx(16.0)


def test_range_threshold_roundtrip():
    model = PathLossModel()
    threshold = model.threshold_for_range(1.0, 55.0)
    assert model.range_for_threshold(1.0, threshold) == pytest.approx(55.0)


@given(
    st.floats(min_value=1.0, max_value=1e4),
    st.floats(min_value=1.0, max_value=1e3),
)
def test_property_roundtrip_any_power_and_range(power, rng):
    model = PathLossModel()
    threshold = model.threshold_for_range(power, rng)
    assert model.range_for_threshold(power, threshold) == pytest.approx(rng, rel=1e-9)


def test_invalid_inputs_rejected():
    model = PathLossModel()
    with pytest.raises(ValueError):
        model.range_for_threshold(1.0, 0.0)
    with pytest.raises(ValueError):
        model.threshold_for_range(1.0, 0.0)


def test_rss_to_db():
    assert rss_to_db(1e-9, noise_floor=1e-9) == pytest.approx(0.0)
    assert rss_to_db(1e-8, noise_floor=1e-9) == pytest.approx(10.0)
    assert rss_to_db(0.0) == -math.inf


def test_distance():
    assert distance((0.0, 0.0), (3.0, 4.0)) == pytest.approx(5.0)
    assert distance((1.0, 1.0), (1.0, 1.0)) == 0.0
