"""The unified ChannelConfig API and its backward-compatibility contract.

Three layers under test:

* :class:`repro.phy.channel.ChannelConfig` itself — validation, cache
  namespacing, the picklable jitter callable;
* the :class:`~repro.net.scenario.Scenario` integration — the deprecated
  ``ranges=`` / ``default_ber=`` / ``rssi_jitter_db=`` kwargs must keep
  producing byte-identical traces through the shim, and the ambient
  :func:`use_channel` selection must pick the right medium class;
* the runtime plumbing — result-cache version token, process-pool ambient
  transport, ``RunSettings.channel`` validation, campaign spec validation.
"""

from __future__ import annotations

import json
import pickle
import random

import pytest

from repro.net.scenario import Scenario
from repro.phy.channel import (
    DEFAULT_CHANNEL,
    ChannelConfig,
    GaussianJitter,
    channel_names,
    current_channel,
    resolve_channel,
    use_channel,
)
from repro.phy.medium import Medium, SinrMedium
from repro.stats.trace import FrameTracer


def _trace_bytes(scenario: Scenario, duration_s: float = 0.1) -> bytes:
    tracer = FrameTracer(scenario.medium)
    src, _sink = scenario.udp_flow("S0", "R0")
    src.start()
    scenario.run(duration_s)
    return "\n".join(
        json.dumps(record.to_dict(), sort_keys=True) for record in tracer.records
    ).encode()


def _two_node_scenario(**kwargs) -> Scenario:
    s = Scenario(seed=7, **kwargs)
    s.add_wireless_node("S0", position=(0.0, 0.0))
    s.add_wireless_node("R0", position=(30.0, 0.0))
    return s


# ------------------------------------------------------------ the config --


def test_registry_lists_both_models():
    assert channel_names() == ["pairwise", "sinr"]


def test_unknown_model_is_a_readable_keyerror():
    with pytest.raises(KeyError, match="unknown channel model"):
        ChannelConfig(model="freespace")
    with pytest.raises(KeyError, match="known models"):
        resolve_channel("freespace")


@pytest.mark.parametrize(
    "kwargs",
    [
        {"noise_floor": 0.0},
        {"noise_floor": -1e-9},
        {"path_loss_exponent": 0.0},
        {"capture_margin": 0.5},
        {"default_ber": 1.0},
        {"default_ber": -0.1},
        {"rssi_jitter_db": -1.0},
        {"ranges": (99.0, 55.0)},
        {"ranges": (0.0, 99.0)},
    ],
)
def test_invalid_knobs_raise_at_construction(kwargs):
    with pytest.raises(ValueError):
        ChannelConfig(**kwargs)


def test_cache_key_namespaces_only_non_reference_models():
    assert ChannelConfig(model="pairwise").cache_key == ""
    assert ChannelConfig().cache_key == ""  # inheriting config: no namespace
    assert ChannelConfig(model="sinr").cache_key == "channel=sinr"


def test_resolve_inherits_ambient_model_but_keeps_own_knobs():
    pinned = ChannelConfig(ranges=(55.0, 99.0))
    assert resolve_channel(pinned).model == "pairwise"
    with use_channel("sinr"):
        resolved = resolve_channel(pinned)
        assert resolved.model == "sinr"
        assert resolved.ranges == (55.0, 99.0)
        # A bare model name keeps the ambient config's knobs.
        assert resolve_channel("sinr") is current_channel()
    assert current_channel() == DEFAULT_CHANNEL


def test_gaussian_jitter_pickles_and_matches_the_old_closure():
    jitter = GaussianJitter(2.0)
    clone = pickle.loads(pickle.dumps(jitter))
    assert clone == jitter
    # Draw-identical to the lambda it replaced: one gauss() per call.
    assert jitter(random.Random(11)) == random.Random(11).gauss(0.0, 2.0)
    assert ChannelConfig().jitter() is None
    assert ChannelConfig(rssi_jitter_db=1.5).jitter() == GaussianJitter(1.5)


# -------------------------------------------------- Scenario integration --


def test_default_scenario_stays_on_the_pairwise_medium(recwarn):
    s = _two_node_scenario()
    assert type(s.medium) is Medium
    assert s.channel.model == "pairwise"
    assert not [w for w in recwarn.list if w.category is DeprecationWarning]


def test_legacy_kwargs_warn_and_match_channel_config_byte_for_byte():
    with pytest.warns(DeprecationWarning, match="ranges"):
        legacy = _two_node_scenario(ranges=(55.0, 99.0), default_ber=1e-5)
    explicit = _two_node_scenario(
        channel=ChannelConfig(ranges=(55.0, 99.0), default_ber=1e-5)
    )
    assert _trace_bytes(legacy) == _trace_bytes(explicit)


def test_legacy_jitter_kwarg_matches_channel_config_byte_for_byte():
    with pytest.warns(DeprecationWarning):
        legacy = _two_node_scenario(rssi_jitter_db=2.0)
    explicit = _two_node_scenario(channel=ChannelConfig(rssi_jitter_db=2.0))
    assert _trace_bytes(legacy) == _trace_bytes(explicit)


def test_mixing_legacy_kwargs_with_channel_is_an_error():
    with pytest.raises(TypeError, match="deprecated"):
        Scenario(seed=1, ranges=(55.0, 99.0), channel=ChannelConfig())


def test_ambient_selection_builds_the_sinr_medium():
    with use_channel("sinr"):
        s = _two_node_scenario()
        assert type(s.medium) is SinrMedium
        assert s.channel.model == "sinr"
    # Inheriting configs pin their knobs but follow the ambient model.
    with use_channel("sinr"):
        s = _two_node_scenario(channel=ChannelConfig(ranges=(55.0, 99.0)))
        assert type(s.medium) is SinrMedium
    s = _two_node_scenario(channel=ChannelConfig(ranges=(55.0, 99.0)))
    assert type(s.medium) is Medium


def test_explicit_model_overrides_the_ambient_selection():
    with use_channel("sinr"):
        s = _two_node_scenario(channel=ChannelConfig(model="pairwise"))
        assert type(s.medium) is Medium


def test_vectorized_backend_gets_the_vectorized_sinr_medium():
    pytest.importorskip("numpy")
    from repro.phy.medium import VectorizedSinrMedium
    from repro.sim.backend import use_backend

    with use_backend("vectorized"), use_channel("sinr"):
        s = _two_node_scenario()
        assert type(s.medium) is VectorizedSinrMedium


# ------------------------------------------------------ runtime plumbing --


def test_cache_version_token_namespaces_the_sinr_channel():
    from repro.runtime.cache import code_version_token

    reference = code_version_token()
    with use_channel("sinr"):
        assert code_version_token() != reference
    with use_channel("pairwise"):
        assert code_version_token() == reference


def test_pool_ships_the_ambient_channel_to_workers():
    """ContextVars do not cross process boundaries; the pool must carry the
    non-default ambient selection explicitly or workers would silently run
    pairwise while the parent caches under the sinr namespace."""
    from repro.runtime.pool import _ambient_selection

    assert _ambient_selection() is None  # reference defaults: no payload
    with use_channel("sinr"):
        selection = _ambient_selection()
        assert selection is not None
        backend_name, channel = selection
        assert channel.model == "sinr"


def test_run_settings_validate_the_channel_name():
    from repro.experiments.common import RunSettings

    assert RunSettings(channel="sinr").channel == "sinr"
    assert RunSettings().channel is None
    with pytest.raises(KeyError, match="unknown channel model"):
        RunSettings(channel="freespace")


def test_campaign_spec_validates_channel_values():
    from repro.campaign.spec import SpecError, spec_from_dict

    data = {
        "campaign": {
            "name": "x",
            "builder": "hidden_node",
            "seeds": [1],
            "duration_s": 0.1,
        },
        "sweep": {"channel": ["sinr", "freespace"]},
    }
    with pytest.raises(SpecError, match="unknown channel model"):
        spec_from_dict(data, source="<test>")
    data["sweep"]["channel"] = ["sinr", "pairwise"]
    spec = spec_from_dict(data, source="<test>")
    assert spec.sweep["channel"] == ["sinr", "pairwise"]
