"""Unit tests for the greedy receiver policy (misbehavior knobs)."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.greedy import ALL_FRAMES, GreedyConfig, GreedyReceiverPolicy
from repro.mac.frames import Frame, FrameKind
from repro.phy.params import MAX_NAV_US


def make_policy(config, seed=1):
    return GreedyReceiverPolicy(config, random.Random(seed))


def cts(duration=1000.0):
    return Frame(FrameKind.CTS, "gr", "gs", duration, 14)


def data(dst="nr"):
    return Frame(FrameKind.DATA, "ns", dst, 314.0, 1052, seq=1)


def test_nav_inflation_adds_configured_amount():
    policy = make_policy(GreedyConfig.nav_inflator(5000.0))
    assert policy.outgoing_nav(cts(1000.0)) == 6000.0
    assert policy.nav_inflations == 1


def test_nav_inflation_clamped_to_protocol_max():
    policy = make_policy(GreedyConfig.nav_inflator(float(MAX_NAV_US)))
    assert policy.outgoing_nav(cts(1000.0)) == float(MAX_NAV_US)


def test_nav_inflation_respects_frame_kinds():
    policy = make_policy(
        GreedyConfig.nav_inflator(5000.0, frames={FrameKind.ACK})
    )
    assert policy.outgoing_nav(cts(1000.0)) == 1000.0  # CTS untouched
    ack = Frame(FrameKind.ACK, "gr", "gs", 0.0, 14)
    assert policy.outgoing_nav(ack) == 5000.0


def test_greedy_percentage_zero_never_misbehaves():
    policy = make_policy(
        GreedyConfig(nav_inflation_us=5000.0, greedy_percentage=0.0)
    )
    for _ in range(100):
        assert policy.outgoing_nav(cts(100.0)) == 100.0


def test_greedy_percentage_partial():
    policy = make_policy(
        GreedyConfig(nav_inflation_us=5000.0, greedy_percentage=50.0), seed=3
    )
    inflated = sum(policy.outgoing_nav(cts(100.0)) > 100.0 for _ in range(1000))
    assert 400 < inflated < 600


def test_spoof_victim_filter():
    policy = make_policy(GreedyConfig.ack_spoofer(victims={"nr"}))
    assert policy.should_spoof_ack(data(dst="nr"))
    assert not policy.should_spoof_ack(data(dst="other"))


def test_spoof_any_victim_by_default():
    policy = make_policy(GreedyConfig.ack_spoofer())
    assert policy.should_spoof_ack(data(dst="anyone"))


def test_fake_ack_gated_by_flag():
    honest = make_policy(GreedyConfig())
    assert not honest.should_fake_ack(data())
    faker = make_policy(GreedyConfig.ack_faker())
    assert faker.should_fake_ack(data())
    assert faker.fakes == 1


def test_invalid_config_rejected():
    with pytest.raises(ValueError):
        GreedyConfig(greedy_percentage=150.0)
    with pytest.raises(ValueError):
        GreedyConfig(nav_inflation_us=-1.0)
    with pytest.raises(ValueError):
        GreedyConfig(spoof_percentage=-5.0)


def test_all_frames_constant_covers_everything():
    assert ALL_FRAMES == frozenset(FrameKind)


@given(
    st.floats(min_value=0.0, max_value=40_000.0),
    st.floats(min_value=0.0, max_value=32_000.0),
)
def test_property_inflated_nav_bounded(inflation, original):
    policy = make_policy(GreedyConfig.nav_inflator(inflation))
    out = policy.outgoing_nav(cts(original))
    assert out >= min(original, float(MAX_NAV_US)) - 1e-9
    assert out <= float(MAX_NAV_US)
