"""Element-wise pins of the vectorized kernels to the scalar closed forms.

Every assertion here is exact ``==``, never approx: the vectorized backend's
equivalence contract is *bit*-exactness, and these properties are the
per-kernel decomposition of that promise.  Hypothesis drives the input
spaces, with the contract's named edge cases (zero-length frames, FER
saturating at exactly 1.0, explicit ``fer=0.0`` links that still consume a
uniform) pinned both by strategy bounds and by dedicated examples.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, example, given, settings
from hypothesis import strategies as st

from repro.mac.dcf import dcf_transition_tables
from repro.phy.error import BitErrorModel, frame_error_rate
from repro.phy.params import airtime_formula, dot11a, dot11b
from repro.sim.backend import numpy_available
from repro.sim.rng import NumpyBlockUniform

pytestmark = pytest.mark.skipif(not numpy_available(), reason="numpy not installed")

bers = st.one_of(
    st.just(0.0),
    st.just(1.0),
    st.floats(min_value=1e-9, max_value=1.0, allow_nan=False),
)
sizes = st.one_of(st.just(0), st.integers(min_value=0, max_value=4096))


# ------------------------------------------------------------- FER kernel --


@given(ber=bers, size=sizes)
@example(ber=0.0, size=0)
@example(ber=1.0, size=0)
@example(ber=0.5, size=4096)  # saturates to exactly 1.0 in float64
def test_fer_array_matches_scalar_elementwise(ber, size):
    from repro.phy.vectorized import fer_array

    scalar = frame_error_rate(ber, size)
    vector = fer_array([ber], [size])
    assert vector.shape == (1,)
    assert float(vector[0]) == scalar
    if ber == 0.5 and size == 4096:
        assert scalar == 1.0  # the saturation edge really is exact 1.0


@given(
    pairs=st.lists(st.tuples(bers, sizes), min_size=0, max_size=32),
)
@settings(suppress_health_check=[HealthCheck.too_slow])
def test_fer_array_batches_match_scalar(pairs):
    import numpy as np

    from repro.phy.vectorized import fer_array

    ber_values = [b for b, _s in pairs]
    size_values = [s for _b, s in pairs]
    vector = fer_array(ber_values, size_values)
    assert vector.shape == (len(pairs),)
    assert vector.dtype == np.float64
    for i, (ber, size) in enumerate(pairs):
        assert float(vector[i]) == frame_error_rate(ber, size)


def test_fer_array_broadcasts_and_validates():
    import numpy as np

    from repro.phy.vectorized import fer_array

    grid = fer_array(np.array([[1e-4], [2e-4]]), np.array([14, 1500]))
    assert grid.shape == (2, 2)
    for i, ber in enumerate((1e-4, 2e-4)):
        for j, size in enumerate((14, 1500)):
            assert float(grid[i, j]) == frame_error_rate(ber, size)
    with pytest.raises(ValueError, match="BER must be in"):
        fer_array([1.5], [100])
    with pytest.raises(ValueError, match="frame size"):
        fer_array([1e-4], [-1])


# --------------------------------------------------------- airtime kernel --


@given(
    size=sizes,
    rate=st.sampled_from([1.0, 2.0, 5.5, 6.0, 11.0, 24.0, 54.0]),
    phy_kind=st.sampled_from(["dsss", "ofdm"]),
)
@example(size=0, rate=11.0, phy_kind="dsss")
@example(size=0, rate=6.0, phy_kind="ofdm")
def test_airtime_array_matches_formula_elementwise(size, rate, phy_kind):
    from repro.phy.vectorized import airtime_array

    ofdm = phy_kind == "ofdm"
    bits_per_symbol = 24 if ofdm else 0
    preamble = 20.0 if ofdm else 192.0
    scalar = airtime_formula(size, rate, preamble, ofdm, bits_per_symbol)
    vector = airtime_array([size], rate, preamble, ofdm, bits_per_symbol)
    assert float(vector[0]) == scalar


@given(size=sizes, explicit_rate=st.booleans())
def test_phy_airtime_array_matches_phy_airtime(size, explicit_rate):
    from repro.phy.vectorized import phy_airtime_array

    for phy in (dot11b(), dot11a()):
        rate = phy.data_rate if explicit_rate else None
        scalar = phy.airtime(size, rate)
        vector = phy_airtime_array(phy, [size], rate)
        assert float(vector[0]) == scalar


# ------------------------------------------------------------ hearer table --


@given(
    rss_values=st.lists(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False), max_size=16
    ),
    cs_threshold=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    rx_threshold=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
)
def test_hearer_table_matches_scalar_threshold_filter(
    rss_values, cs_threshold, rx_threshold
):
    from repro.phy.vectorized import hearer_table

    entries = [(f"N{i}", rss, 1.0 + i) for i, rss in enumerate(rss_values)]
    table = hearer_table(entries, cs_threshold, rx_threshold)
    expected = [
        (name, rss, delay, rss >= rx_threshold)
        for name, rss, delay in entries
        if rss >= cs_threshold
    ]
    assert table == expected
    for _name, _rss, _delay, decodable in table:
        # numpy.bool_ would compare equal but poison JSON serialization.
        assert type(decodable) is bool


# -------------------------------------------- corruption plan <-> roll -----


link_configs = st.sampled_from(
    [
        ("none", None),
        ("default_ber", 1e-4),
        ("link_ber", 0.0),
        ("link_ber", 2e-4),
        ("link_ber", 1.0),
        ("data_fer", 0.0),  # explicit 0.0 must still consume one uniform
        ("data_fer", 0.5),
        ("rate_profile", {2.0: 1e-5, 11.0: 5e-3}),
    ]
)


@given(
    config=link_configs,
    size=sizes,
    is_data=st.booleans(),
    rate=st.sampled_from([None, 2.0, 11.0]),
    roll_seed=st.integers(min_value=0, max_value=2**16),
)
def test_corruption_plan_is_the_roll_is_corrupted_makes(
    config, size, is_data, rate, roll_seed
):
    """plan + one conditional draw == is_corrupted, including draw *count*.

    The vectorized medium replays the scalar RNG stream, so a plan that
    consumed a uniform where the scalar path did not (or vice versa) would
    desynchronize every subsequent corruption roll in the run.  The final
    assertion — both generators produce the same next value — pins the
    consumed-draw count, not just the verdict.
    """
    kind, value = config
    model = BitErrorModel()
    if kind == "default_ber":
        model = BitErrorModel(default_ber=value)
    elif kind == "link_ber":
        model.set_ber("S", "R", value)
    elif kind == "data_fer":
        model.set_data_fer("S", "R", value)
    elif kind == "rate_profile":
        model.set_rate_profile("S", "R", value)

    scalar_rng = random.Random(roll_seed)
    plan_rng = random.Random(roll_seed)
    scalar_verdict = model.is_corrupted("S", "R", size, is_data, scalar_rng, rate)
    plan = model.corruption_plan("S", "R", size, is_data, rate)
    plan_verdict = False if plan is None else plan_rng.random() < plan
    assert plan_verdict == scalar_verdict
    assert scalar_rng.random() == plan_rng.random(), "draw counts diverged"


def test_corruption_plan_cache_epoch_bumps_on_every_mutation():
    model = BitErrorModel()
    epochs = [model._epoch]
    model.set_ber("S", "R", 1e-4)
    epochs.append(model._epoch)
    model.set_data_fer("S", "R", 0.5)
    epochs.append(model._epoch)
    model.set_rate_profile("S", "R", {11.0: 1e-3})
    epochs.append(model._epoch)
    assert epochs == sorted(set(epochs)), "every mutation must bump the epoch"


# ------------------------------------------------------------- block RNG ----


@given(
    seed=st.integers(min_value=0, max_value=2**32),
    block=st.sampled_from([1, 2, 3, 7, 256, 4096]),
    warmup=st.integers(min_value=0, max_value=20),
    draws=st.integers(min_value=1, max_value=700),
)
@settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
def test_numpy_block_uniform_replays_mersenne_stream_exactly(
    seed, block, warmup, draws
):
    reference = random.Random(seed)
    source = random.Random(seed)
    for _ in range(warmup):  # transplant mid-stream, not only at pos 0
        reference.random()
        source.random()
    wrapper = NumpyBlockUniform(source, block=block)
    got = [wrapper.random() for _ in range(draws)]
    expected = [reference.random() for _ in range(draws)]
    assert got == expected
    for value in got[:5]:
        assert type(value) is float  # numpy.float64 must not leak


def test_numpy_block_uniform_rejects_bad_block():
    with pytest.raises(ValueError):
        NumpyBlockUniform(random.Random(1), block=0)


# ------------------------------------------------------------- DCF tables ---


@given(
    slot_time=st.sampled_from([9.0, 20.0]),
    difs=st.sampled_from([28.0, 50.0]),
    eifs=st.sampled_from([188.0, 364.0]),
    cw_max=st.sampled_from([15, 31, 1023]),
)
def test_dcf_transition_tables_match_arithmetic(slot_time, difs, eifs, cw_max):
    difs_delay, eifs_delay, cw_next = dcf_transition_tables(
        slot_time, difs, eifs, cw_max
    )
    assert len(difs_delay) == len(eifs_delay) == len(cw_next) == cw_max + 1
    for slots in range(cw_max + 1):
        assert difs_delay[slots] == difs + slots * slot_time
        assert eifs_delay[slots] == eifs + slots * slot_time
    for cw in range(cw_max + 1):
        assert cw_next[cw] == min(2 * (cw + 1) - 1, cw_max)
    assert cw_next[cw_max] == cw_max  # saturation: CW never exceeds cw_max
