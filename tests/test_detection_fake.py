"""Unit tests for the fake-ACK detector (prober + loss consistency check)."""

import pytest

from repro.core.detection import DetectionReport, FakeAckDetector, ProbeResponder, Prober
from repro.core.greedy import GreedyConfig
from repro.net.scenario import Scenario


def build(greedy: bool, data_fer: float = 0.5, seed: int = 2):
    s = Scenario(seed=seed, rts_enabled=False)
    s.add_wireless_node("S")
    config = GreedyConfig.ack_faker() if greedy else None
    s.add_wireless_node("R", greedy=config)
    s.error_model.set_data_fer("S", "R", data_fer)
    s._auto_route("S", "R")
    prober = Prober(s.sim, s.nodes["S"], "R", interval_us=10_000.0)
    ProbeResponder(s.nodes["R"], prober.flow_id)
    report = DetectionReport()
    detector = FakeAckDetector(s.macs["S"], prober, "R", report, threshold=0.05)
    return s, prober, detector, report


def test_probes_echo_on_clean_link():
    s, prober, detector, report = build(greedy=False, data_fer=0.0)
    prober.start()
    s.run(2.0)
    assert prober.sent > 100
    assert prober.replies > 100
    assert prober.application_loss_rate() < 0.05


def test_honest_lossy_receiver_not_flagged():
    """MAC retransmissions recover honest losses, so application loss stays
    consistent with MACLoss^(retries+1) and no alarm fires."""
    s, prober, detector, report = build(greedy=False, data_fer=0.5)
    prober.start()
    s.run(3.0)
    assert not detector.evaluate(s.sim.now)
    assert not report.events


def test_fake_acking_receiver_detected():
    """Fake ACKs hide MAC loss while probes keep dying: inconsistency."""
    s, prober, detector, report = build(greedy=True, data_fer=0.5)
    prober.start()
    s.run(3.0)
    assert detector.evaluate(s.sim.now)
    assert report.count("fake-ack", offender="R") == 1
    # The observed MAC loss is (nearly) hidden by the fake ACKs.
    assert s.macs["S"].stats.mac_loss_rate("R") < 0.2
    assert prober.application_loss_rate() > 0.3


def test_detector_needs_minimum_probes():
    s, prober, detector, report = build(greedy=True, data_fer=0.5)
    prober.start()
    s.run(0.05)  # a handful of probes only
    assert not detector.evaluate(s.sim.now)


def test_expected_application_loss_formula():
    s, prober, detector, report = build(greedy=False, data_fer=0.0)
    stats = s.macs["S"].stats
    stats.data_attempts_by_dst["R"] = 100
    stats.ack_failures_by_dst["R"] = 50
    retries = s.phy.short_retry_limit  # no RTS/CTS in this cell
    assert detector.expected_application_loss() == pytest.approx(0.5 ** (retries + 1))


def test_application_loss_ignores_probes_still_in_flight():
    s, prober, detector, report = build(greedy=False, data_fer=0.0)
    prober.start()
    s.run(0.5)
    # Probes sent in the last reply_grace window don't count as lost.
    loss = prober.application_loss_rate()
    assert loss < 0.05
