"""CLI tests for ``repro campaign run/status/report``.

These drive ``main([...])`` end to end on a tiny TOML spec in a temp
directory, including the resume-after-interrupt path the issue calls out.
"""

from __future__ import annotations

import json

import pytest

pytest.importorskip("tomllib", reason="TOML campaign specs need Python 3.11+")

from repro.campaign import Manifest, PENDING, manifest_path, point_path
from repro.cli import main

SPEC_TOML = """\
[campaign]
name = "cli_small"
builder = "nav_pairs"
seeds = [1, 2]
duration_s = 0.2

[params]
transport = "udp"

[zip]
alpha = [0, 6]
nav_inflation_us = [0.0, 600.0]

[quick]
seeds = [1]
duration_s = 0.1
"""


@pytest.fixture()
def spec_path(tmp_path):
    path = tmp_path / "small.toml"
    path.write_text(SPEC_TOML)
    return path


def run_cli(*argv):
    return main([str(arg) for arg in argv])


def test_run_status_report_cycle(spec_path, tmp_path, capsys):
    out = tmp_path / "out"
    assert run_cli("campaign", "run", spec_path, "--out", out, "--jobs", "2") == 0
    text = capsys.readouterr().out
    assert "executed 2, skipped 0, failed 0" in text
    assert "manifest.json" in text

    assert run_cli("campaign", "status", out) == 0
    text = capsys.readouterr().out
    assert "2/2 points done" in text
    assert "done" in text

    assert run_cli("campaign", "status", out, "--expect-complete") == 0
    capsys.readouterr()

    assert run_cli("campaign", "report", out) == 0
    text = capsys.readouterr().out
    assert "cli_small" in text
    assert "goodput_R0" in text and "alpha" in text


def test_run_resume_is_a_no_op(spec_path, tmp_path, capsys):
    out = tmp_path / "out"
    assert run_cli("campaign", "run", spec_path, "--out", out) == 0
    capsys.readouterr()
    assert run_cli("campaign", "run", spec_path, "--out", out, "--resume") == 0
    assert "executed 0, skipped 2" in capsys.readouterr().out


def test_resume_after_interrupt_runs_only_the_missing_point(
    spec_path, tmp_path, capsys
):
    out = tmp_path / "out"
    assert run_cli("campaign", "run", spec_path, "--out", out) == 0
    # simulate an interrupt: one point never finished
    manifest = Manifest.load(manifest_path(out))
    victim = manifest.points[1]
    victim.status = PENDING
    victim.seeds_done = []
    manifest.save(manifest_path(out))
    point_path(out, victim).unlink()
    capsys.readouterr()

    assert run_cli("campaign", "run", spec_path, "--out", out, "--resume") == 0
    assert "executed 1, skipped 1" in capsys.readouterr().out


def test_status_expect_complete_fails_on_partial_manifest(spec_path, tmp_path, capsys):
    out = tmp_path / "out"
    assert run_cli("campaign", "run", spec_path, "--out", out) == 0
    manifest = Manifest.load(manifest_path(out))
    manifest.points[0].status = PENDING
    manifest.save(manifest_path(out))
    capsys.readouterr()

    assert run_cli("campaign", "status", out, "--expect-complete") == 1
    captured = capsys.readouterr()
    assert "not complete" in captured.err
    assert "1/2 points done" in captured.out


def test_quick_mode_applies_overrides(spec_path, tmp_path, capsys):
    out = tmp_path / "quick"
    assert run_cli("campaign", "run", spec_path, "--quick", "--out", out) == 0
    assert "(quick)" in capsys.readouterr().out
    manifest = Manifest.load(manifest_path(out))
    assert manifest.seeds == [1]
    assert manifest.duration_s == 0.1


def test_resume_across_quick_and_full_is_refused(spec_path, tmp_path, capsys):
    out = tmp_path / "out"
    assert run_cli("campaign", "run", spec_path, "--quick", "--out", out) == 0
    capsys.readouterr()
    assert run_cli("campaign", "run", spec_path, "--out", out, "--resume") == 2
    assert "spec" in capsys.readouterr().err


def test_run_missing_spec_exits_2(tmp_path, capsys):
    assert run_cli("campaign", "run", tmp_path / "absent.toml") == 2
    assert "not found" in capsys.readouterr().err


def test_run_invalid_spec_exits_2(tmp_path, capsys):
    bad = tmp_path / "bad.toml"
    bad.write_text(
        '[campaign]\nname = "x"\nbuilder = "nope"\nseeds = [1]\nduration_s = 1.0\n'
    )
    assert run_cli("campaign", "run", bad) == 2
    assert "unknown builder" in capsys.readouterr().err


def test_status_without_manifest_exits_2(tmp_path, capsys):
    empty = tmp_path / "empty"
    empty.mkdir()
    assert run_cli("campaign", "status", empty) == 2
    assert "no manifest" in capsys.readouterr().err


def test_run_with_failed_point_exits_1(tmp_path, capsys):
    spec = tmp_path / "failing.toml"
    spec.write_text(
        "[campaign]\n"
        'name = "failing"\nbuilder = "nav_pairs"\nseeds = [1]\nduration_s = 0.1\n'
        "[sweep]\n"
        'inflate_frames = [["CTS"], ["NOPE"]]\n'
    )
    out = tmp_path / "out"
    assert run_cli("campaign", "run", spec, "--out", out) == 1
    assert "failed 1" in capsys.readouterr().out
    capsys.readouterr()
    assert run_cli("campaign", "status", out, "--expect-complete") == 1


def test_report_formats_and_output_file(spec_path, tmp_path, capsys):
    out = tmp_path / "out"
    assert run_cli("campaign", "run", spec_path, "--out", out) == 0
    capsys.readouterr()

    assert run_cli("campaign", "report", out, "--format", "csv") == 0
    csv_text = capsys.readouterr().out
    header = csv_text.splitlines()[0].split(",")
    assert header[:2] == ["index", "point"]
    assert "alpha" in header and "goodput_R0" in header

    target = tmp_path / "report.json"
    assert run_cli("campaign", "report", out, "--format", "json", "-o", target) == 0
    assert str(target) in capsys.readouterr().out
    payload = json.loads(target.read_text())
    assert payload["name"] == "cli_small"
    assert len(payload["rows"]) == 2


def test_report_accepts_spec_path_as_target(spec_path, tmp_path, monkeypatch, capsys):
    # With no --out, artifacts land under results/campaigns/<name> relative
    # to the CWD; point both run and report at the spec file itself.
    monkeypatch.chdir(tmp_path)
    assert run_cli("campaign", "run", spec_path, "--quick") == 0
    capsys.readouterr()
    assert run_cli("campaign", "status", spec_path, "--quick") == 0
    assert "cli_small" in capsys.readouterr().out
    assert run_cli("campaign", "report", spec_path, "--quick") == 0
    assert "goodput_R0" in capsys.readouterr().out


def test_resume_with_lingering_failed_point_still_exits_1(tmp_path, capsys):
    # Exit status reflects the manifest, not just this invocation: a resume
    # that executes nothing but inherits a failed point must stay nonzero.
    spec = tmp_path / "failing.toml"
    spec.write_text(
        "[campaign]\n"
        'name = "failing"\nbuilder = "nav_pairs"\nseeds = [1]\nduration_s = 0.1\n'
        "[sweep]\n"
        'inflate_frames = [["CTS"], ["NOPE"]]\n'
    )
    out = tmp_path / "out"
    assert run_cli("campaign", "run", spec, "--out", out) == 1
    capsys.readouterr()
    assert run_cli("campaign", "run", spec, "--out", out, "--resume") == 1
    assert "failed" in capsys.readouterr().out


def test_status_surfaces_retries_and_last_failure(spec_path, tmp_path, capsys):
    out = tmp_path / "out"
    assert run_cli("campaign", "run", spec_path, "--out", out) == 0
    manifest = Manifest.load(manifest_path(out))
    manifest.points[0].retries = 2
    manifest.points[0].last_failure = "JobTimeoutError: watchdog killed worker"
    manifest.faults = {"pool_rebuilds": 1, "worker_kills": 1,
                      "degraded_to_serial": False}
    manifest.save(manifest_path(out))
    capsys.readouterr()

    assert run_cli("campaign", "status", out) == 0
    text = capsys.readouterr().out
    assert "retries" in text and "last failure" in text
    assert "JobTimeoutError: watchdog killed worker" in text
    assert "pool incidents: 1 rebuilds, 1 watchdog kills" in text


def test_run_accepts_retry_flags(spec_path, tmp_path, capsys):
    out = tmp_path / "out"
    code = run_cli(
        "campaign", "run", spec_path, "--quick", "--out", out,
        "--retries", "2", "--job-timeout", "30", "--backoff", "0.05",
    )
    assert code == 0
    assert "executed" in capsys.readouterr().out


def test_status_json_emits_machine_readable_document(spec_path, tmp_path, capsys):
    out = tmp_path / "out"
    assert run_cli("campaign", "run", spec_path, "--out", out) == 0
    capsys.readouterr()

    assert run_cli("campaign", "status", out, "--json") == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["name"] == "cli_small"
    assert doc["complete"] is True
    assert doc["total"] == doc["done"] == 2
    assert doc["failed"] == doc["pending"] == 0
    assert len(doc["points"]) == 2
    for point in doc["points"]:
        assert set(point) == {
            "index", "id", "status", "seeds_done", "retries", "last_failure",
        }
        assert point["status"] == "done"
        assert point["seeds_done"] == 2


def test_status_json_respects_expect_complete(spec_path, tmp_path, capsys):
    out = tmp_path / "out"
    assert run_cli("campaign", "run", spec_path, "--out", out) == 0
    manifest = Manifest.load(manifest_path(out))
    manifest.points[0].status = PENDING
    manifest.save(manifest_path(out))
    capsys.readouterr()

    assert run_cli("campaign", "status", out, "--json", "--expect-complete") == 1
    captured = capsys.readouterr()
    doc = json.loads(captured.out)  # the document still comes out intact
    assert doc["complete"] is False
    assert "not complete" in captured.err
