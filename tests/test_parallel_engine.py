"""Determinism-equivalence and property tests for the parallel engine.

The contract the engine must uphold: fanning seeded runs out over worker
processes changes only the wall clock, never a single bit of the results.
One representative runner per misbehavior family is executed serially and
with ``jobs=4`` on the same seeds, and the metric dicts must compare equal
(floats exact, no tolerance).
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.experiments.common import (
    run_fake_inherent_loss,
    run_grc_nav_distance,
    run_nav_pairs,
    run_spoof_tcp_pairs,
    seed_job,
)
from repro.runtime import JobSpec, execution, map_over_seeds, runner_path
from repro.stats import median_over_seeds

SEEDS = (1, 2, 3, 4)
DURATION_S = 0.4  # short: 4 runners x 2 modes x 4 seeds must stay CI-friendly

#: One representative runner per misbehavior family (ISSUE satellite 1):
#: NAV inflation on pairs, TCP ACK spoofing, fake ACKs, and GRC NAV defense.
FAMILY_JOBS = {
    "nav-pairs": seed_job(
        run_nav_pairs,
        duration_s=DURATION_S,
        transport="udp",
        nav_inflation_us=10_000.0,
    ),
    "spoof-tcp": seed_job(
        run_spoof_tcp_pairs, duration_s=DURATION_S, ber=2e-4
    ),
    "fake-ack": seed_job(
        run_fake_inherent_loss,
        duration_s=DURATION_S,
        data_fer=0.5,
        greedy_flags=(False, True),
    ),
    "grc-nav": seed_job(
        run_grc_nav_distance, duration_s=DURATION_S, pair_distance_m=20.0
    ),
}


@pytest.mark.parametrize("family", sorted(FAMILY_JOBS))
def test_parallel_results_bit_identical_to_serial(family):
    job = FAMILY_JOBS[family]
    serial = map_over_seeds(job, SEEDS, jobs=1)
    parallel = map_over_seeds(job, SEEDS, jobs=4)
    assert serial == parallel  # exact float equality, per seed and per key


def test_median_over_seeds_identical_serial_vs_parallel():
    job = FAMILY_JOBS["nav-pairs"]
    assert median_over_seeds(job, SEEDS) == median_over_seeds(job, SEEDS, jobs=4)


def test_execution_context_drives_fanout_transparently():
    job = FAMILY_JOBS["fake-ack"]
    serial = median_over_seeds(job, SEEDS[:2])
    with execution(jobs=2):
        ambient = median_over_seeds(job, SEEDS[:2])
    assert serial == ambient


# ------------------------------------------------------- property tests --


def test_map_over_seeds_empty_seed_error():
    with pytest.raises(ValueError, match="at least one seed"):
        map_over_seeds(lambda seed: {"x": 1.0}, [])


def test_map_over_seeds_rejects_duplicate_seeds():
    with pytest.raises(ValueError, match="duplicate"):
        map_over_seeds(lambda seed: {"x": 1.0}, [1, 2, 1])


def test_median_over_seeds_inconsistent_keys():
    outcomes = {1: {"x": 1.0}, 2: {"y": 2.0}}
    with pytest.raises(ValueError, match="inconsistent keys"):
        median_over_seeds(lambda seed: outcomes[seed], [1, 2])


def test_results_keyed_by_seed_not_completion_order():
    # Higher seeds finish first: completion order is the reverse of
    # submission order, yet every result must land under its own seed.
    def run(seed: int) -> dict[str, float]:
        time.sleep((5 - seed) * 0.05)
        return {"x": float(seed)}

    with ThreadPoolExecutor(max_workers=4) as pool:
        results = map_over_seeds(run, [1, 2, 3, 4], executor=pool)
    assert results == {1: {"x": 1.0}, 2: {"x": 2.0}, 3: {"x": 3.0}, 4: {"x": 4.0}}
    assert list(results) == [1, 2, 3, 4]  # seed order, not completion order


def test_injected_executor_with_jobspec():
    job = seed_job(run_nav_pairs, duration_s=0.2, transport="udp")
    with ThreadPoolExecutor(max_workers=2) as pool:
        threaded = map_over_seeds(job, (1, 2), executor=pool)
    assert threaded == map_over_seeds(job, (1, 2))


# ------------------------------------------------------- JobSpec hygiene --


def test_seed_job_rejects_lambdas_and_locals():
    with pytest.raises(ValueError, match="module level"):
        seed_job(lambda seed: {"x": 1.0})

    def local_runner(seed):
        return {"x": 1.0}

    with pytest.raises(ValueError, match="module level"):
        seed_job(local_runner)


def test_seed_job_rejects_seed_kwarg():
    with pytest.raises(ValueError, match="seed"):
        seed_job(run_nav_pairs, seed=1, duration_s=0.1)


def test_jobspec_roundtrips_through_its_path():
    job = seed_job(run_nav_pairs, duration_s=0.1)
    assert job.runner == runner_path(run_nav_pairs)
    assert job.resolve() is run_nav_pairs
    assert JobSpec.of(job.runner, duration_s=0.1) == job


def test_jobspec_requires_seed_to_run():
    with pytest.raises(ValueError, match="no seed"):
        seed_job(run_nav_pairs, duration_s=0.1).run()


def test_jobspec_rejects_opaque_kwargs_at_construction():
    class Opaque:
        pass

    with pytest.raises(TypeError, match="'phy'.*not cache-key stable"):
        JobSpec.of(runner_path(run_nav_pairs), duration_s=0.1, phy=Opaque())
    with pytest.raises(TypeError, match="'phy'"):
        seed_job(run_nav_pairs, duration_s=0.1, phy=Opaque())
    # plain data (including nested containers) is still fine
    seed_job(run_nav_pairs, duration_s=0.1, inflate_frames=("CTS", "ACK"))
