"""The ``repro perf`` microbenchmark harness and its regression gate."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.perf import (
    SCHEMA,
    attach_speedup,
    check_regression,
    load_bench,
    run_benchmark,
    scenario_names,
    time_scenario,
    validate_bench,
    write_bench,
)
from repro.perf.scenarios import SCENARIOS, get_scenario

#: Tiny simulated duration so every harness test stays sub-second.
SMOKE_S = 0.02


def test_registered_scenarios_cover_the_canonical_figures():
    names = scenario_names()
    assert "fig1_nav_udp" in names
    assert "fig8_nav_tcp" in names
    assert "spoof_tcp" in names


def test_get_scenario_unknown_name_is_a_readable_error():
    with pytest.raises(KeyError, match="unknown perf scenario"):
        get_scenario("nope")


def test_time_scenario_shape_and_monotonic_fields():
    entry = time_scenario("fig1_nav_udp", seed=1, repeats=2, duration_s=SMOKE_S)
    assert entry["sim_duration_s"] == SMOKE_S
    assert len(entry["runs_s"]) == 2
    assert all(r > 0 for r in entry["runs_s"])
    assert entry["wall_s"] == min(entry["runs_s"])
    assert entry["events"] > 0
    assert entry["events_per_s"] > 0
    assert entry["metrics"], "determinism probe metrics missing"


def test_time_scenario_metrics_are_deterministic_across_repeats():
    a = time_scenario("fig1_nav_udp", seed=3, repeats=1, duration_s=SMOKE_S)
    b = time_scenario("fig1_nav_udp", seed=3, repeats=2, duration_s=SMOKE_S)
    assert a["metrics"] == b["metrics"]
    assert a["events"] == b["events"]


def test_run_benchmark_emits_schema_valid_document(tmp_path):
    bench = run_benchmark(seed=1, repeats=1, duration_s=SMOKE_S)
    assert bench["schema"] == SCHEMA
    assert set(bench["scenarios"]) == set(SCENARIOS)
    assert validate_bench(bench) == []
    path = write_bench(tmp_path / "BENCH_core.json", bench)
    assert validate_bench(load_bench(path)) == []


def test_validate_bench_rejects_nonsense():
    bench = run_benchmark(
        names=["fig1_nav_udp"], seed=1, repeats=1, duration_s=SMOKE_S
    )
    bad = json.loads(json.dumps(bench))
    bad["schema"] = "bench-core/999"
    bad["scenarios"]["fig1_nav_udp"]["wall_s"] = -1.0
    bad["scenarios"]["made_up"] = bad["scenarios"]["fig1_nav_udp"]
    problems = validate_bench(bad)
    assert any("schema" in p for p in problems)
    assert any("non-positive wall time" in p for p in problems)
    assert any("made_up" in p for p in problems)


def test_attach_speedup_and_check_regression():
    bench = run_benchmark(
        names=["fig1_nav_udp"], seed=1, repeats=1, duration_s=SMOKE_S
    )
    wall = bench["scenarios"]["fig1_nav_udp"]["wall_s"]
    fast_baseline = {"scenarios": {"fig1_nav_udp": {"wall_s": wall / 10.0}}}
    slow_baseline = {"scenarios": {"fig1_nav_udp": {"wall_s": wall * 10.0}}}
    with_speedup = attach_speedup(bench, slow_baseline)
    assert with_speedup["speedup"]["fig1_nav_udp"] == pytest.approx(10.0)
    # >2x slower than the (artificially fast) baseline -> regression.
    assert check_regression(bench, fast_baseline)
    assert check_regression(bench, slow_baseline) == []
    # Scenarios missing from the baseline never gate.
    assert check_regression(bench, {"scenarios": {}}) == []


def test_check_regression_failure_names_scenario_and_magnitude():
    """A regression message must say *which* scenario and *by how much*.

    A bare "regression detected" forces whoever is on CI duty to re-run the
    whole harness locally; the message is the diagnosis.
    """
    bench = {
        "scenarios": {
            "fig1_nav_udp": {"wall_s": 1.0, "events_per_s": 50_000.0},
            "spoof_tcp": {"wall_s": 0.1, "events_per_s": 90_000.0},
        }
    }
    baseline = {
        "scenarios": {
            "fig1_nav_udp": {"wall_s": 0.25, "events_per_s": 200_000.0},
            "spoof_tcp": {"wall_s": 0.09, "events_per_s": 95_000.0},
        }
    }
    problems = check_regression(bench, baseline)
    assert len(problems) == 1, "only the regressed scenario may be reported"
    message = problems[0]
    assert message.startswith("fig1_nav_udp: regressed 4.00x")
    assert "wall 1.000s vs baseline 0.250s" in message
    assert "limit 0.500s at factor 2" in message
    assert "50,000 events/s vs baseline 200,000" in message


def test_check_regression_failure_without_baseline_event_rate():
    """Old baseline files without events/s still produce a full message."""
    bench = {"scenarios": {"spoof_tcp": {"wall_s": 3.0}}}
    baseline = {"scenarios": {"spoof_tcp": {"wall_s": 1.0}}}
    (message,) = check_regression(bench, baseline)
    assert message.startswith("spoof_tcp: regressed 3.00x")
    assert "wall 3.000s vs baseline 1.000s" in message
    assert "events/s" not in message


def test_cli_perf_regression_failure_is_diagnosable_from_stderr(tmp_path, capsys):
    out = tmp_path / "bench.json"
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(
        json.dumps(
            {
                "schema": SCHEMA,
                "scenarios": {"fig1_nav_udp": {"wall_s": 1e-9}},
            }
        )
    )
    rc = main(
        [
            "perf", "fig1_nav_udp", "--repeats", "1",
            "--duration", str(SMOKE_S),
            "-o", str(out),
            "--check-regression", str(baseline_path),
        ]
    )
    assert rc == 1
    err = capsys.readouterr().err
    assert "REGRESSION fig1_nav_udp: regressed" in err
    assert "vs baseline 0.000s" in err


def test_cli_perf_writes_bench_core(tmp_path, capsys):
    out = tmp_path / "BENCH_core.json"
    rc = main(
        [
            "perf",
            "fig1_nav_udp",
            "--seed",
            "1",
            "--repeats",
            "1",
            "--duration",
            str(SMOKE_S),
            "-o",
            str(out),
        ]
    )
    assert rc == 0
    bench = load_bench(out)
    assert validate_bench(bench) == []
    assert list(bench["scenarios"]) == ["fig1_nav_udp"]


def test_cli_perf_list(capsys):
    assert main(["perf", "--list"]) == 0
    assert "fig1_nav_udp" in capsys.readouterr().out


def test_cli_perf_unknown_scenario_exits_2():
    assert main(["perf", "not_a_scenario", "--duration", str(SMOKE_S)]) == 2


def test_cli_perf_check_regression_exit_codes(tmp_path):
    out = tmp_path / "bench.json"
    rc = main(
        [
            "perf",
            "fig1_nav_udp",
            "--repeats",
            "1",
            "--duration",
            str(SMOKE_S),
            "-o",
            str(out),
        ]
    )
    assert rc == 0
    measured = load_bench(out)["scenarios"]["fig1_nav_udp"]["wall_s"]

    def baseline_file(wall: float) -> str:
        path = tmp_path / f"baseline_{wall:.6f}.json"
        doc = {
            "schema": SCHEMA,
            "scenarios": {"fig1_nav_udp": {"wall_s": wall}},
        }
        path.write_text(json.dumps(doc))
        return str(path)

    common = [
        "perf",
        "fig1_nav_udp",
        "--repeats",
        "1",
        "--duration",
        str(SMOKE_S),
        "-o",
        str(tmp_path / "gated.json"),
    ]
    # Generous baseline: passes (exit 0) and attaches a speedup section.
    assert main(common + ["--check-regression", baseline_file(measured * 100)]) == 0
    gated = load_bench(tmp_path / "gated.json")
    assert "speedup" in gated
    # Hopeless baseline: the current run is >2x slower -> exit 1.
    assert main(common + ["--check-regression", baseline_file(measured / 100)]) == 1
    # Unreadable baseline -> usage error.
    assert main(common + ["--check-regression", str(tmp_path / "missing.json")]) == 2


def test_committed_baseline_is_valid_and_fresh_run_passes_gate():
    """The repo's committed baseline must gate a real (tiny) run cleanly.

    Uses a scaled allowance rather than the 2x default: this test runs a
    20 ms smoke while the baseline was measured at full duration, so only
    the document's structural validity and scenario names are asserted.
    """
    baseline = load_bench("benchmarks/perf/baseline.json")
    assert baseline["schema"] == SCHEMA
    assert set(baseline["scenarios"]) <= set(SCENARIOS)
    for entry in baseline["scenarios"].values():
        assert entry["wall_s"] > 0
