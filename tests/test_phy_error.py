"""Unit tests for the frame loss model."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.phy.error import BitErrorModel, frame_error_rate, set_ber_all_pairs


def test_zero_ber_is_lossless():
    assert frame_error_rate(0.0, 1024) == 0.0


def test_table3_calibration():
    """The mapping must reproduce the paper's Table III for control frames."""
    assert frame_error_rate(2e-4, 14) == pytest.approx(7.519e-3, rel=0.02)
    assert frame_error_rate(2e-4, 20) == pytest.approx(8.762e-3, rel=0.02)
    assert frame_error_rate(2e-4, 1092) == pytest.approx(2.033e-1, rel=0.05)


def test_invalid_inputs_rejected():
    with pytest.raises(ValueError):
        frame_error_rate(-0.1, 100)
    with pytest.raises(ValueError):
        frame_error_rate(1.5, 100)
    with pytest.raises(ValueError):
        frame_error_rate(0.1, -1)


@given(
    st.floats(min_value=0.0, max_value=1.0),
    st.integers(min_value=0, max_value=10_000),
)
def test_property_fer_is_a_probability(ber, size):
    fer = frame_error_rate(ber, size)
    assert 0.0 <= fer <= 1.0


@given(
    st.floats(min_value=1e-7, max_value=1e-2),
    st.integers(min_value=1, max_value=2000),
    st.integers(min_value=1, max_value=2000),
)
def test_property_fer_monotonic_in_size(ber, a, b):
    small, large = min(a, b), max(a, b)
    assert frame_error_rate(ber, small) <= frame_error_rate(ber, large)


def test_default_and_per_link_ber():
    model = BitErrorModel(default_ber=0.0)
    model.set_ber("a", "b", 1.0)
    rng = random.Random(1)
    assert model.is_corrupted("a", "b", 100, True, rng)
    assert not model.is_corrupted("b", "a", 100, True, rng)  # default 0


def test_symmetric_ber_helper():
    model = BitErrorModel()
    model.set_ber_symmetric("a", "b", 0.5)
    assert model.ber("a", "b") == 0.5
    assert model.ber("b", "a") == 0.5


def test_direct_data_fer_spares_control_frames():
    model = BitErrorModel()
    model.set_data_fer("a", "b", 1.0)
    rng = random.Random(1)
    assert model.is_corrupted("a", "b", 1024, True, rng)  # data always lost
    assert not model.is_corrupted("a", "b", 14, False, rng)  # ACK clean


def test_invalid_rates_rejected():
    model = BitErrorModel()
    with pytest.raises(ValueError):
        model.set_ber("a", "b", 1.5)
    with pytest.raises(ValueError):
        model.set_data_fer("a", "b", -0.1)


def test_set_ber_all_pairs_covers_every_directed_link():
    model = BitErrorModel()
    set_ber_all_pairs(model, ["a", "b", "c"], 0.25)
    for src in "abc":
        for dst in "abc":
            if src != dst:
                assert model.ber(src, dst) == 0.25
    assert model.ber("a", "a") == 0.0  # self-links untouched


def test_monte_carlo_matches_analytic_fer():
    model = BitErrorModel()
    model.set_ber("a", "b", 2e-4)
    rng = random.Random(99)
    n = 20_000
    hits = sum(model.is_corrupted("a", "b", 1092, True, rng) for _ in range(n))
    assert hits / n == pytest.approx(frame_error_rate(2e-4, 1092), rel=0.1)


# ------------------------------------------ fast-path lookup-table pinning --


class _NoDrawRng:
    """Sentinel RNG that fails the test if anything draws from it."""

    def random(self):  # pragma: no cover - reaching this is the failure
        raise AssertionError("fast path must not draw from the RNG")


@given(
    st.floats(min_value=0.0, max_value=1.0),
    st.integers(min_value=0, max_value=4096),
)
def test_property_cached_fer_is_bit_identical_to_formula(ber, size):
    from repro.phy.error import frame_error_rate_formula

    assert frame_error_rate(ber, size) == frame_error_rate_formula(ber, size)


def test_trivial_flag_tracks_every_loss_table():
    model = BitErrorModel()
    assert model.trivial
    model.set_ber("a", "b", 0.1)
    assert not model.trivial
    assert not BitErrorModel(default_ber=1e-4).trivial
    fer_model = BitErrorModel()
    fer_model.set_data_fer("a", "b", 0.5)
    assert not fer_model.trivial
    rate_model = BitErrorModel()
    rate_model.set_rate_profile("a", "b", {11.0: 1e-3})
    assert not rate_model.trivial


def test_trivial_model_never_corrupts_nor_draws():
    model = BitErrorModel()
    assert model.trivial
    assert not model.is_corrupted("a", "b", 1024, True, _NoDrawRng())


def test_zero_ber_link_skips_the_rng_even_when_not_trivial():
    """Links with no loss never consume randomness (draw-sequence fence)."""
    model = BitErrorModel()
    model.set_ber("a", "b", 0.5)
    assert not model.is_corrupted("x", "y", 1024, True, _NoDrawRng())
