"""End-to-end integration tests: each misbehavior and its countermeasure.

Short runs (≈1 simulated second) that assert the paper's headline effects
qualitatively; the full quantitative sweeps live in benchmarks/.
"""

import pytest

from repro.core.greedy import GreedyConfig
from repro.mac.frames import FrameKind
from repro.net.scenario import Scenario
from repro.phy.error import set_ber_all_pairs

US = 1_000_000.0


def two_pair_udp(greedy_config, seed=1, duration=1.0, **scenario_kwargs):
    s = Scenario(seed=seed, **scenario_kwargs)
    s.add_wireless_node("NS")
    s.add_wireless_node("GS")
    s.add_wireless_node("NR")
    s.add_wireless_node("GR", greedy=greedy_config)
    f1, k1 = s.udp_flow("NS", "NR")
    f2, k2 = s.udp_flow("GS", "GR")
    f1.start()
    f2.start()
    s.run(duration)
    return s, k1.goodput_mbps(duration * US), k2.goodput_mbps(duration * US)


class TestNavInflation:
    def test_honest_baseline_is_fair(self):
        _s, nr, gr = two_pair_udp(None)
        assert 0.4 < nr / gr < 2.5

    def test_inflated_cts_nav_starves_competitor(self):
        config = GreedyConfig.nav_inflator(10_000.0, {FrameKind.CTS})
        _s, nr, gr = two_pair_udp(config)
        assert gr > 10 * max(nr, 1e-3)

    def test_inflated_ack_nav_works_without_rtscts(self):
        config = GreedyConfig.nav_inflator(10_000.0, {FrameKind.ACK})
        _s, nr, gr = two_pair_udp(config, rts_enabled=False)
        assert gr > 5 * max(nr, 1e-3)

    def test_greedy_sender_mac_never_defers_to_own_receiver(self):
        """The inflated CTS is addressed to GS, so GS itself is unaffected."""
        config = GreedyConfig.nav_inflator(31_000.0, {FrameKind.CTS})
        s, _nr, _gr = two_pair_udp(config)
        assert s.macs["GS"].stats.average_cw < 40

    def test_grc_restores_fairness_and_attributes_blame(self):
        config = GreedyConfig.nav_inflator(31_000.0, {FrameKind.CTS})
        s = Scenario(seed=1)
        s.add_wireless_node("NS")
        s.add_wireless_node("GS")
        s.add_wireless_node("NR")
        s.add_wireless_node("GR", greedy=config)
        s.enable_nav_validation()
        f1, k1 = s.udp_flow("NS", "NR")
        f2, k2 = s.udp_flow("GS", "GR")
        f1.start()
        f2.start()
        s.run(1.0)
        nr, gr = k1.goodput_mbps(US), k2.goodput_mbps(US)
        assert 0.4 < nr / gr < 2.5
        offenders = s.report.offenders("nav")
        assert set(offenders) == {"GR"}


class TestAckSpoofing:
    def build(self, spoof, grc=False, ber=2e-4, seed=2):
        s = Scenario(seed=seed)
        s.add_wireless_node("NS", position=(0, 0))
        s.add_wireless_node("GS", position=(60, 60))
        s.add_wireless_node("NR", position=(10, 0))
        config = GreedyConfig.ack_spoofer(victims={"NR"}) if spoof else None
        s.add_wireless_node("GR", position=(48, 20), greedy=config)
        set_ber_all_pairs(s.error_model, ["NS", "GS", "NR", "GR"], ber)
        if grc:
            s.enable_spoof_detection(["NS"])
        snd1, rcv1 = s.tcp_flow("NS", "NR")
        snd2, rcv2 = s.tcp_flow("GS", "GR")
        snd1.start()
        snd2.start()
        s.run(2.0)
        return s, rcv1.goodput_mbps(2 * US), rcv2.goodput_mbps(2 * US)

    def test_spoofer_gains_under_losses(self):
        _s, nr_honest, gr_honest = self.build(spoof=False)
        _s, nr, gr = self.build(spoof=True)
        assert gr > gr_honest
        assert nr < nr_honest

    def test_spoofed_acks_are_transmitted(self):
        s, _nr, _gr = self.build(spoof=True)
        assert s.macs["GR"].stats.tx_spoofed_ack > 0

    def test_grc_detects_and_recovers(self):
        _s, nr_honest, _gr = self.build(spoof=False)
        s, nr, gr = self.build(spoof=True, grc=True)
        assert s.report.count("rssi-spoof") > 0
        assert nr > 0.5 * nr_honest  # victim recovered
        assert s.macs["NS"].stats.acks_ignored_by_grc > 0


class TestFakeAcks:
    def build(self, fake, fer=0.5, seed=1):
        s = Scenario(seed=seed, rts_enabled=False)
        s.add_wireless_node("S1")
        s.add_wireless_node("S2")
        s.add_wireless_node("R1")
        s.add_wireless_node("R2", greedy=GreedyConfig.ack_faker() if fake else None)
        s.error_model.set_data_fer("S1", "R1", fer)
        s.error_model.set_data_fer("S2", "R2", fer)
        f1, k1 = s.udp_flow("S1", "R1")
        f2, k2 = s.udp_flow("S2", "R2")
        f1.start()
        f2.start()
        s.run(1.5)
        return s, k1.goodput_mbps(1.5 * US), k2.goodput_mbps(1.5 * US)

    def test_faker_gains_under_inherent_loss(self):
        _s, r1_honest, r2_honest = self.build(fake=False)
        s, r1, r2 = self.build(fake=True)
        assert r2 > 1.3 * r2_honest
        assert s.macs["R2"].stats.tx_fake_ack > 0

    def test_faker_sender_keeps_small_cw(self):
        s, _r1, _r2 = self.build(fake=True)
        assert s.macs["S2"].stats.average_cw < s.macs["S1"].stats.average_cw


class TestCrossLayerDetection:
    def test_cross_layer_detector_fires_on_spoofed_flow(self):
        from repro.core.detection import CrossLayerSpoofDetector

        s = Scenario(seed=2)
        s.add_wireless_node("NS", position=(0, 0))
        s.add_wireless_node("GS", position=(60, 60))
        s.add_wireless_node("NR", position=(10, 0))
        s.add_wireless_node(
            "GR", position=(48, 20), greedy=GreedyConfig.ack_spoofer(victims={"NR"})
        )
        set_ber_all_pairs(s.error_model, ["NS", "GS", "NR", "GR"], 2e-4)
        snd, _rcv = s.tcp_flow("NS", "NR")
        detector = CrossLayerSpoofDetector("NS", snd.flow_id, "GR", s.report)
        s.macs["NS"].on_msdu_sent = detector.on_mac_acked
        snd.on_retransmit = detector.on_tcp_retransmit
        snd2, _rcv2 = s.tcp_flow("GS", "GR")
        snd.start()
        snd2.start()
        s.run(3.0)
        assert detector.detected
        assert s.report.count("cross-layer") == 1
