"""Unit tests for the Scenario builder."""

import pytest

from repro.core.greedy import GreedyConfig
from repro.mac.frames import FrameKind
from repro.net.scenario import Scenario
from repro.phy.params import dot11a


def test_default_phy_is_80211b():
    s = Scenario()
    assert s.phy.name == "802.11b"
    assert s.saturating_rate_bps() == pytest.approx(11e6)


def test_custom_phy():
    s = Scenario(phy=dot11a(6.0))
    assert s.phy.name == "802.11a"


def test_greedy_node_gets_greedy_policy():
    s = Scenario()
    s.add_wireless_node("gr", greedy=GreedyConfig.nav_inflator(1000.0))
    from repro.core.greedy import GreedyReceiverPolicy

    assert isinstance(s.policies["gr"], GreedyReceiverPolicy)
    s.add_wireless_node("nr")
    assert not isinstance(s.policies["nr"], GreedyReceiverPolicy)


def test_udp_flow_auto_routes():
    s = Scenario()
    s.add_wireless_node("a")
    s.add_wireless_node("b")
    src, sink = s.udp_flow("a", "b", rate_bps=1e6)
    src.start()
    s.run(0.2)
    assert sink.packets_received > 0


def test_tcp_flow_auto_routes():
    s = Scenario()
    s.add_wireless_node("a")
    s.add_wireless_node("b")
    snd, rcv = s.tcp_flow("a", "b")
    snd.start()
    s.run(0.5)
    assert rcv.segments_received > 0


def test_enable_nav_validation_installs_validators():
    s = Scenario()
    s.add_wireless_node("a")
    s.add_wireless_node("b")
    s.enable_nav_validation(["a"])
    assert s.macs["a"].nav_validator is not None
    assert s.macs["b"].nav_validator is None
    s.enable_nav_validation()  # default: everyone
    assert s.macs["b"].nav_validator is not None


def test_enable_spoof_detection_installs_inspectors():
    s = Scenario()
    s.add_wireless_node("a")
    s.add_wireless_node("b")
    s.enable_spoof_detection(["a"], threshold_db=2.0)
    assert s.macs["a"].ack_inspector is not None
    assert s.macs["a"].ack_inspector.threshold_db == 2.0
    assert s.macs["b"].ack_inspector is None


def test_detectors_share_the_scenario_report():
    s = Scenario()
    s.add_wireless_node("a")
    s.enable_nav_validation(["a"])
    s.enable_spoof_detection(["a"])
    assert s.macs["a"].nav_validator.report is s.report
    assert s.macs["a"].ack_inspector.report is s.report


def test_ranges_configure_medium():
    s = Scenario(ranges=(55.0, 99.0))
    assert s.medium.rx_threshold > s.medium.cs_threshold > 0


def test_run_advances_clock():
    s = Scenario()
    s.run(0.5)
    assert s.sim.now == pytest.approx(500_000.0)
    s.run(0.5)
    assert s.sim.now == pytest.approx(1_000_000.0)


def test_seed_reproducibility():
    def goodput(seed):
        s = Scenario(seed=seed)
        s.add_wireless_node("a")
        s.add_wireless_node("b")
        s.add_wireless_node("c")
        s.add_wireless_node("d")
        f1, k1 = s.udp_flow("a", "b")
        f2, k2 = s.udp_flow("c", "d")
        f1.start()
        f2.start()
        s.run(0.5)
        return k1.packets_received, k2.packets_received

    assert goodput(9) == goodput(9)
    assert goodput(9) != goodput(10)
