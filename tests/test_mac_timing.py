"""Protocol-timing tests: the exact DCF frame choreography on the air.

Uses the frame tracer to check inter-frame spacings, NAV arithmetic of real
exchanges, and the airtime accounting the whole evaluation rests on.
"""

import pytest

from repro.mac.frames import FrameKind, cts_duration_from_rts
from repro.net.scenario import Scenario
from repro.stats.trace import FrameTracer


def run_single_exchange(rts_enabled=True, seed=1):
    s = Scenario(seed=seed, rts_enabled=rts_enabled)
    s.add_wireless_node("a")
    s.add_wireless_node("b")
    tracer = FrameTracer(s.medium)
    s._auto_route("a", "b")
    from repro.transport.packets import Packet, PacketKind

    packet = Packet(PacketKind.UDP_DATA, "f", "a", "b", payload_bytes=1024)
    s.macs["a"].send(packet, "b", packet.size_bytes)
    s.run(0.05)
    return s, tracer.records


def test_exchange_frame_order():
    s, records = run_single_exchange()
    assert [r.kind for r in records] == ["RTS", "CTS", "DATA", "ACK"]


def test_sifs_separates_response_frames():
    s, records = run_single_exchange()
    rts, cts, data, ack = records
    sifs = s.phy.sifs
    # CTS starts one SIFS after the RTS ends (prop delay ~0 when co-located).
    rts_end = rts.time_us + rts.airtime_us
    assert cts.time_us - rts_end == pytest.approx(sifs, abs=0.2)
    data_end = data.time_us + data.airtime_us
    assert ack.time_us - data_end == pytest.approx(sifs, abs=0.2)


def test_initial_access_waits_at_least_difs():
    s, records = run_single_exchange()
    assert records[0].time_us >= s.phy.difs


def test_nav_chain_is_consistent():
    """Each frame's NAV covers exactly the remainder of the exchange."""
    s, records = run_single_exchange()
    rts, cts, data, ack = records
    sifs = s.phy.sifs
    # RTS NAV = SIFS + CTS + SIFS + DATA + SIFS + ACK.
    expected_rts_nav = 3 * sifs + cts.airtime_us + data.airtime_us + ack.airtime_us
    assert rts.nav_us == pytest.approx(expected_rts_nav, abs=0.5)
    assert cts.nav_us == pytest.approx(
        cts_duration_from_rts(s.phy, rts.nav_us), abs=0.5
    )
    assert data.nav_us == pytest.approx(sifs + ack.airtime_us, abs=0.5)
    assert ack.nav_us == 0.0


def test_exchange_without_rtscts_is_two_frames():
    s, records = run_single_exchange(rts_enabled=False)
    assert [r.kind for r in records] == ["DATA", "ACK"]


def test_control_frames_use_basic_rate_airtime():
    s, records = run_single_exchange()
    rts = records[0]
    assert rts.airtime_us == pytest.approx(s.phy.rts_time)
    data = records[2]
    assert data.airtime_us == pytest.approx(s.phy.data_time(1024 + 40))


def test_saturated_cell_airtime_is_conserved():
    """Total airtime + mandatory gaps cannot exceed the simulated time."""
    s = Scenario(seed=3)
    s.add_wireless_node("a")
    s.add_wireless_node("b")
    s.add_wireless_node("c")
    s.add_wireless_node("d")
    tracer = FrameTracer(s.medium)
    f1, _ = s.udp_flow("a", "b")
    f2, _ = s.udp_flow("c", "d")
    f1.start()
    f2.start()
    duration_us = 500_000.0
    s.run(duration_us / 1e6)
    total_airtime = sum(r.airtime_us for r in tracer.records)
    assert total_airtime < duration_us
    # A saturated 802.11b cell is busy most of the time.
    assert total_airtime > 0.7 * duration_us


def test_backoff_slots_are_slot_aligned():
    """Between consecutive exchanges, the idle gap is DIFS + k slots."""
    s = Scenario(seed=5)
    s.add_wireless_node("a")
    s.add_wireless_node("b")
    tracer = FrameTracer(s.medium)
    src, _sink = s.udp_flow("a", "b")
    src.start()
    s.run(0.2)
    exchanges = [r for r in tracer.records if r.kind == "RTS"]
    acks = [r for r in tracer.records if r.kind == "ACK"]
    checked = 0
    for ack, next_rts in zip(acks, exchanges[1:]):
        gap = next_rts.time_us - (ack.time_us + ack.airtime_us)
        if gap <= 0:  # source was idle (no packet queued): skip
            continue
        slots = (gap - s.phy.difs) / s.phy.slot_time
        if slots >= -0.01:
            assert slots == pytest.approx(round(slots), abs=0.05)
            checked += 1
    assert checked > 3
