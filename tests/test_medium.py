"""Unit tests for the broadcast medium: ranges, capture, collisions."""

import pytest

from repro.mac.frames import Frame, FrameKind
from repro.phy.error import BitErrorModel
from repro.phy.medium import Medium, Radio
from repro.phy.params import dot11b
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams


class RecordingMac:
    """Minimal MAC stub that records PHY callbacks."""

    def __init__(self):
        self.received = []
        self.busy_transitions = []
        self.tx_done = 0

    def phy_busy(self):
        self.busy_transitions.append("busy")

    def phy_idle(self):
        self.busy_transitions.append("idle")

    def phy_tx_done(self):
        self.tx_done += 1

    def phy_receive(self, frame, corrupted, addr_ok, rssi_db):
        self.received.append((frame, corrupted, addr_ok, rssi_db))


def make_medium(positions, **kwargs):
    sim = Simulator()
    medium = Medium(
        sim,
        dot11b(),
        RngStreams(3).stream("m"),
        error_model=BitErrorModel(),
        **kwargs,
    )
    radios = []
    for i, pos in enumerate(positions):
        radio = Radio(medium, f"r{i}", pos)
        radio.mac = RecordingMac()
        radios.append(radio)
    return sim, medium, radios


def data_frame(src="r0", dst="r1", seq=1):
    return Frame(FrameKind.DATA, src, dst, 314.0, 1052, seq=seq)


def test_broadcast_reaches_all_in_range():
    sim, medium, (a, b, c) = make_medium([(0, 0), (10, 0), (20, 0)])
    a.transmit(data_frame(), 957.0)
    sim.run()
    assert len(b.mac.received) == 1
    assert len(c.mac.received) == 1  # overhears too (default: infinite range)
    assert a.mac.tx_done == 1


def test_out_of_range_receives_nothing():
    sim, medium, (a, b) = make_medium([(0, 0), (100, 0)])
    medium.configure_ranges(55.0, 99.0)
    a.transmit(data_frame(), 957.0)
    sim.run()
    assert b.mac.received == []
    assert b.mac.busy_transitions == []  # not even energy


def test_in_interference_range_senses_but_cannot_decode():
    sim, medium, (a, b) = make_medium([(0, 0), (70, 0)])
    medium.configure_ranges(55.0, 99.0)
    a.transmit(data_frame(), 957.0)
    sim.run()
    assert b.mac.received == []
    assert "busy" in b.mac.busy_transitions
    assert b.mac.busy_transitions[-1] == "idle"


def test_equal_power_collision_corrupts_locked_frame():
    sim, medium, (a, b, c) = make_medium([(0, 0), (0, 0), (0, 0)])
    a.transmit(data_frame(src="r0", dst="r2", seq=1), 957.0)
    b.transmit(data_frame(src="r1", dst="r2", seq=2), 957.0)
    sim.run()
    # c locked the first arrival; the overlap garbles it.
    assert len(c.mac.received) == 1
    frame, corrupted, _addr_ok, _rssi = c.mac.received[0]
    assert corrupted


def test_capture_stronger_first_survives():
    # b is 10 m from c, a is 40 m away: power ratio 4^4 = 256 >= 10.
    sim, medium, (a, b, c) = make_medium([(40, 0), (10, 0), (0, 0)])
    b.transmit(data_frame(src="r1", dst="r2", seq=1), 957.0)
    a.transmit(data_frame(src="r0", dst="r2", seq=2), 957.0)
    sim.run()
    frames = [(f.src, corrupted) for (f, corrupted, _a, _r) in c.mac.received]
    assert ("r1", False) in frames  # strong frame captured cleanly


def test_capture_stronger_late_arrival_takes_over():
    sim, medium, (a, b, c) = make_medium([(40, 0), (10, 0), (0, 0)])
    a.transmit(data_frame(src="r0", dst="r2", seq=1), 957.0)  # weak first
    b.transmit(data_frame(src="r1", dst="r2", seq=2), 957.0)  # strong second
    sim.run()
    received_srcs = [f.src for (f, corrupted, _a, _r) in c.mac.received if not corrupted]
    assert received_srcs == ["r1"]


def test_capture_disabled_means_collision():
    sim, medium, (a, b, c) = make_medium(
        [(40, 0), (10, 0), (0, 0)], capture_enabled=False
    )
    b.transmit(data_frame(src="r1", dst="r2", seq=1), 957.0)
    a.transmit(data_frame(src="r0", dst="r2", seq=2), 957.0)
    sim.run()
    assert all(corrupted for (_f, corrupted, _a, _r) in c.mac.received)


def test_half_duplex_cannot_receive_while_transmitting():
    sim, medium, (a, b) = make_medium([(0, 0), (0, 0)])
    a.transmit(data_frame(src="r0", dst="r1", seq=1), 957.0)
    b.transmit(data_frame(src="r1", dst="r0", seq=2), 957.0)
    sim.run()
    assert a.mac.received == []
    assert b.mac.received == []


def test_no_mid_frame_locking():
    """A receiver that was busy transmitting when a frame started cannot
    decode it after its own transmission ends (missed preamble)."""
    sim, medium, (a, b) = make_medium([(0, 0), (0, 0)])
    b.transmit(data_frame(src="r1", dst="r0", seq=1), 100.0)  # short tx
    a.transmit(data_frame(src="r0", dst="r1", seq=2), 957.0)  # long overlap
    sim.run()
    assert b.mac.received == []


def test_corruption_rolls_per_receiver_link():
    sim, medium, (a, b, c) = make_medium([(0, 0), (5, 0), (10, 0)])
    medium.error_model.set_ber("r0", "r1", 1.0)  # only the r0->r1 link is bad
    a.transmit(data_frame(dst="r1"), 957.0)
    sim.run()
    assert b.mac.received[0][1] is True  # corrupted at b
    assert c.mac.received[0][1] is False  # clean overheard copy at c


def test_address_survival_flag():
    sim, medium, (a, b) = make_medium([(0, 0), (5, 0)])
    medium.error_model.set_ber("r0", "r1", 1.0)
    medium.addr_dst_survival = 0.0  # force address loss on corruption
    a.transmit(data_frame(), 957.0)
    sim.run()
    _frame, corrupted, addr_ok, _rssi = b.mac.received[0]
    assert corrupted and not addr_ok


def test_rssi_reported_decreases_with_distance():
    sim, medium, (a, b, c) = make_medium([(0, 0), (10, 0), (30, 0)])
    a.transmit(data_frame(dst="r1"), 957.0)
    sim.run()
    rssi_near = b.mac.received[0][3]
    rssi_far = c.mac.received[0][3]
    assert rssi_near > rssi_far


def test_rssi_jitter_applied():
    sim, medium, (a, b) = make_medium([(0, 0), (10, 0)], rssi_jitter=lambda rng: 3.0)
    a.transmit(data_frame(dst="r1"), 957.0)
    sim.run()
    jittered = b.mac.received[0][3]
    sim2, medium2, (a2, b2) = make_medium([(0, 0), (10, 0)])
    a2.transmit(data_frame(dst="r1"), 957.0)
    sim2.run()
    assert jittered == pytest.approx(b2.mac.received[0][3] + 3.0)


def test_duplicate_radio_names_rejected():
    sim, medium, _radios = make_medium([(0, 0)])
    with pytest.raises(ValueError):
        Radio(medium, "r0", (1, 1))


def test_transmit_while_transmitting_rejected():
    sim, medium, (a, b) = make_medium([(0, 0), (5, 0)])
    a.transmit(data_frame(), 957.0)
    with pytest.raises(RuntimeError):
        a.transmit(data_frame(seq=2), 957.0)


def test_nonpositive_duration_rejected():
    sim, medium, (a, b) = make_medium([(0, 0), (5, 0)])
    with pytest.raises(ValueError):
        a.transmit(data_frame(), 0.0)


def test_invalid_range_config_rejected():
    sim, medium, _ = make_medium([(0, 0)])
    with pytest.raises(ValueError):
        medium.configure_ranges(99.0, 55.0)


def test_carrier_busy_during_own_transmission():
    sim, medium, (a, b) = make_medium([(0, 0), (5, 0)])
    a.transmit(data_frame(), 957.0)
    assert a.carrier_busy
    sim.run()
    assert not a.carrier_busy
