"""Seed isolation: a simulator draws only from its own ``RngStreams``.

Every stochastic decision (MAC backoff slots, per-flow jitter, error-model
coin flips) must flow through the per-scenario seeded streams — never the
global ``random`` module.  If that invariant holds, then (a) interleaving
the construction and execution of two simulators cannot perturb either
one's results, and (b) reseeding or draining the global RNG between steps
changes nothing.  ``repro.mac.dcf`` points here from its ``import random``
audit note.
"""

from __future__ import annotations

import dataclasses
import random

from repro.core.greedy import GreedyConfig
from repro.mac.frames import FrameKind
from repro.net.scenario import Scenario

NODES = ("NS", "GS", "NR", "GR")
DURATION_S = 0.3


def build(seed: int, *, perturb=None) -> Scenario:
    """One two-pair hotspot with a NAV-inflating GR, optionally calling
    ``perturb()`` (global-RNG noise) between every construction step."""
    tick = perturb if perturb is not None else lambda: None
    s = Scenario(seed=seed)
    tick()
    greedy = GreedyConfig.nav_inflator(10_000.0, frozenset({FrameKind.CTS}))
    for name in NODES:
        s.add_wireless_node(name, greedy=greedy if name == "GR" else None)
        tick()
    for src, dst in (("NS", "NR"), ("GS", "GR")):
        flow, _sink = s.udp_flow(src, dst)
        tick()
        flow.start()
        tick()
    return s


def mac_stats(s: Scenario) -> dict[str, dict]:
    return {
        name: dataclasses.asdict(s.nodes[name].mac.stats) for name in NODES
    }


def test_interleaved_construction_is_bit_identical():
    """Two equal-seed simulators built and run in lockstep agree exactly."""
    a = Scenario(seed=42)
    b = Scenario(seed=42)
    greedy = GreedyConfig.nav_inflator(10_000.0, frozenset({FrameKind.CTS}))
    # interleave every construction step of the two simulators
    for name in NODES:
        a.add_wireless_node(name, greedy=greedy if name == "GR" else None)
        b.add_wireless_node(name, greedy=greedy if name == "GR" else None)
    flows = []
    for src, dst in (("NS", "NR"), ("GS", "GR")):
        fa, _ = a.udp_flow(src, dst)
        fb, _ = b.udp_flow(src, dst)
        flows += [fa, fb]
    for flow in flows:
        flow.start()
    a.run(DURATION_S)
    b.run(DURATION_S)
    assert mac_stats(a) == mac_stats(b)


def test_global_random_state_cannot_perturb_a_run():
    """Reference run vs. a run with global-RNG noise injected everywhere."""
    reference = build(7)
    reference.run(DURATION_S)

    random.seed(123456)
    noisy = build(7, perturb=lambda: random.random())
    random.seed(654321)  # reseed again right before execution
    noisy.run(DURATION_S)

    assert mac_stats(reference) == mac_stats(noisy)
    # the run also produced actual traffic, so the comparison is meaningful
    assert any(
        stats["msdu_sent"] > 0 for stats in mac_stats(reference).values()
    )


def test_distinct_seeds_actually_differ():
    """Guard against the trivial pass where stats are identical because the
    scenario is deterministic regardless of seed."""
    a = build(1)
    a.run(DURATION_S)
    b = build(2)
    b.run(DURATION_S)
    assert mac_stats(a) != mac_stats(b)
