"""Unit tests for the Table I corruption/address-survival model."""

import random

import pytest

from repro.testbed.corruption import (
    CALIBRATED_PARAMS,
    CorruptionBreakdown,
    DensityErrorParams,
    address_survival_analytic,
    expected_survival,
    measure_address_survival,
)


def test_breakdown_properties():
    b = CorruptionBreakdown(frames=100, corrupted=10, corrupted_dst_ok=8, corrupted_src_dst_ok=6)
    assert b.corruption_rate == 0.1
    assert b.dst_survival == 0.8
    assert b.src_survival_given_dst == 0.75


def test_breakdown_handles_zero_counts():
    b = CorruptionBreakdown()
    assert b.corruption_rate == 0.0
    assert b.dst_survival == 0.0
    assert b.src_survival_given_dst == 0.0


def test_calibration_matches_table1_80211b():
    rng = random.Random(5)
    r = measure_address_survival(rng, 40_000, phy_name="802.11b")
    assert r.corruption_rate == pytest.approx(1367 / 65536, rel=0.15)
    assert r.dst_survival > 0.97


def test_calibration_matches_table1_80211a():
    rng = random.Random(5)
    r = measure_address_survival(rng, 20_000, phy_name="802.11a")
    assert r.corruption_rate == pytest.approx(7376 / 23068, rel=0.1)
    assert 0.75 < r.dst_survival < 0.92  # paper: 0.84


def test_counts_are_nested():
    rng = random.Random(6)
    r = measure_address_survival(rng, 5_000, phy_name="802.11a")
    assert r.corrupted <= r.frames
    assert r.corrupted_dst_ok <= r.corrupted
    assert r.corrupted_src_dst_ok <= r.corrupted_dst_ok


def test_invalid_params_rejected():
    with pytest.raises(ValueError):
        DensityErrorParams(corruption_rate=1.5, mean_error_density=0.1)
    with pytest.raises(ValueError):
        DensityErrorParams(corruption_rate=0.1, mean_error_density=0.0)


def test_analytic_iid_baseline():
    p_corrupt, dst_ok, src_ok = address_survival_analytic(2e-5, 1092)
    assert p_corrupt == pytest.approx(1 - (1 - 2e-5) ** 1092)
    # Independent errors predict near-perfect survival.
    assert dst_ok > 0.99
    assert src_ok > 0.99


def test_analytic_zero_error_rate():
    p_corrupt, dst_ok, src_ok = address_survival_analytic(0.0)
    assert p_corrupt == 0.0
    assert dst_ok == 1.0


def test_analytic_rejects_invalid_rate():
    with pytest.raises(ValueError):
        address_survival_analytic(1.0)


def test_expected_survival_matches_monte_carlo():
    params = CALIBRATED_PARAMS["802.11a"]
    analytic = expected_survival(params, samples=20_000)
    rng = random.Random(8)
    r = measure_address_survival(rng, 30_000, params=params)
    assert r.dst_survival == pytest.approx(analytic, abs=0.03)
