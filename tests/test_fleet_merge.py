"""Merge contract: shard outputs fold back into the canonical single-host run.

Two layers of evidence:

- *Synthetic* manifests + payloads drive the pure merge properties
  (idempotent, order-independent, partial-merge leaves points pending,
  duplicate/unknown/stale shards refused) without paying for simulations.
- *Real* runs pin the acceptance criterion: a fleet run of a tiny spec over
  2 and 3 shards produces ``results.csv`` bytes and metrics fingerprints
  identical to ``run_campaign`` of the same spec on one host.
"""

import itertools
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign import metrics_fingerprint, run_campaign
from repro.campaign.manifest import DONE, Manifest, PointState
from repro.campaign.runner import point_path, write_reports
from repro.campaign.spec import expand_grid, point_id, spec_from_dict, spec_hash
from repro.fleet import FleetError, merge_fleet, plan_shards, run_fleet

SPEC_DOC = {
    "campaign": {
        "name": "merge-test",
        "builder": "nav_pairs",
        "seeds": [1, 2],
        "duration_s": 0.15,
    },
    "params": {"transport": "udp"},
    "sweep": {"n_greedy": [0, 1]},
    "zip": {"nav_inflation_us": [0.0, 300.0]},
}


@pytest.fixture(scope="module")
def spec():
    return spec_from_dict(SPEC_DOC)


# ----------------------------------------------------------- synthetic -------


def _fake_shard(tmp_path, spec, name, points):
    """Write a fake completed shard dir carrying ``points`` (id->index map)."""
    shard_dir = tmp_path / name
    states = []
    for pid, (index, params) in points.items():
        state = PointState(
            id=pid, index=index, params=params, status=DONE,
            seeds_done=list(spec.seeds),
        )
        payload = {
            "id": pid,
            "params": params,
            "per_seed": {str(s): {"goodput": float(index + s)} for s in spec.seeds},
            "median": {"goodput": float(index) + 1.5},
            "telemetry": None,
        }
        path = point_path(shard_dir, state)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True))
        states.append(state)
    manifest = Manifest(
        name=spec.name,
        builder=spec.builder,
        spec_hash=spec_hash(spec),
        code_version="testtoken",
        seeds=list(spec.seeds),
        duration_s=spec.duration_s,
        points=states,
    )
    manifest.save(shard_dir / "manifest.json")
    return shard_dir


def _split(spec, n):
    """{id: (index, params)} maps per shard, following the real planner."""
    grid = {point_id(p): (i, p) for i, p in enumerate(expand_grid(spec))}
    plan = plan_shards(spec, n)
    return [{pid: grid[pid] for pid in shard} for shard in plan.shards]


def test_merge_reconstructs_the_single_host_artifacts(tmp_path, spec):
    """Merged manifest + reports == the same points written as one manifest."""
    parts = _split(spec, 2)
    dirs = [
        _fake_shard(tmp_path, spec, f"shard{i}", part)
        for i, part in enumerate(parts)
    ]
    out = tmp_path / "merged"
    merged = merge_fleet(spec, out, shard_dirs=dirs)
    assert merged.complete
    assert [p.index for p in merged.points] == list(range(len(merged.points)))

    # Reference: the identical points written directly as one campaign dir.
    whole = {}
    for part in parts:
        whole.update(part)
    reference_dir = _fake_shard(tmp_path, spec, "single", whole)
    reference = Manifest.load(reference_dir / "manifest.json")
    reference.points.sort(key=lambda p: p.index)
    write_reports(reference_dir, reference)
    assert (out / "results.csv").read_bytes() == (
        reference_dir / "results.csv"
    ).read_bytes()
    assert metrics_fingerprint(out) == metrics_fingerprint(reference_dir)


@settings(max_examples=10, deadline=None)
@given(order=st.permutations(list(range(3))))
def test_merge_is_order_independent(tmp_path_factory, order, spec):
    tmp_path = tmp_path_factory.mktemp("order")
    parts = _split(spec, 3)
    dirs = [
        _fake_shard(tmp_path, spec, f"shard{i}", part)
        for i, part in enumerate(parts)
    ]
    baseline = tmp_path / "baseline"
    merge_fleet(spec, baseline, shard_dirs=dirs)
    permuted = tmp_path / "permuted"
    merge_fleet(spec, permuted, shard_dirs=[dirs[i] for i in order])
    assert (permuted / "results.csv").read_bytes() == (
        baseline / "results.csv"
    ).read_bytes()
    assert (permuted / "manifest.json").read_bytes() == (
        baseline / "manifest.json"
    ).read_bytes()


def test_merge_is_idempotent(tmp_path, spec):
    dirs = [
        _fake_shard(tmp_path, spec, f"shard{i}", part)
        for i, part in enumerate(_split(spec, 2))
    ]
    out = tmp_path / "merged"
    merge_fleet(spec, out, shard_dirs=dirs)
    first_csv = (out / "results.csv").read_bytes()
    first_manifest = (out / "manifest.json").read_bytes()
    merge_fleet(spec, out, shard_dirs=dirs)  # merge again, same inputs
    assert (out / "results.csv").read_bytes() == first_csv
    assert (out / "manifest.json").read_bytes() == first_manifest


def test_partial_merge_leaves_missing_points_pending(tmp_path, spec):
    parts = _split(spec, 2)
    survivor = _fake_shard(tmp_path, spec, "survivor", parts[0])
    out = tmp_path / "merged"
    merged = merge_fleet(spec, out, shard_dirs=[survivor])
    assert not merged.complete
    assert merged.count(DONE) == len(parts[0])
    assert merged.total == spec.n_points
    assert (out / "results.csv").exists()  # survivors still reported


def test_duplicate_point_across_shards_is_refused(tmp_path, spec):
    parts = _split(spec, 2)
    overlap = dict(parts[1])
    overlap.update(dict(itertools.islice(parts[0].items(), 1)))
    dirs = [
        _fake_shard(tmp_path, spec, "a", parts[0]),
        _fake_shard(tmp_path, spec, "b", overlap),
    ]
    with pytest.raises(FleetError, match="more than one shard"):
        merge_fleet(spec, tmp_path / "merged", shard_dirs=dirs)


def test_stale_shard_spec_hash_is_refused(tmp_path, spec):
    other = spec_from_dict(
        {**SPEC_DOC, "campaign": {**SPEC_DOC["campaign"], "seeds": [1, 2, 3]}}
    )
    stale = _fake_shard(tmp_path, other, "stale", _split(other, 1)[0])
    with pytest.raises(FleetError, match="spec hash"):
        merge_fleet(spec, tmp_path / "merged", shard_dirs=[stale])


def test_mixed_code_versions_are_refused(tmp_path, spec):
    parts = _split(spec, 2)
    dirs = [
        _fake_shard(tmp_path, spec, f"shard{i}", part)
        for i, part in enumerate(parts)
    ]
    drifted = Manifest.load(dirs[1] / "manifest.json")
    drifted.code_version = "othertoken"
    drifted.save(dirs[1] / "manifest.json")
    with pytest.raises(FleetError, match="code"):
        merge_fleet(spec, tmp_path / "merged", shard_dirs=dirs)


# ----------------------------------------------------- real-run equivalence --


@pytest.mark.parametrize("n_shards", [2, 3])
def test_fleet_run_matches_single_host_bytes(tmp_path, spec, n_shards):
    """The acceptance criterion, on a tiny grid: byte-identical outputs."""
    single = tmp_path / "single"
    run_campaign(spec, out_dir=single)

    fleet_out = tmp_path / f"fleet{n_shards}"
    result = run_fleet(spec, fleet_out, n_shards=n_shards, executor="local")
    assert result.ok and result.merged

    assert metrics_fingerprint(fleet_out) == metrics_fingerprint(single)
    assert (fleet_out / "results.csv").read_bytes() == (
        single / "results.csv"
    ).read_bytes()


def test_fleet_run_matches_single_host_second_spec(tmp_path):
    """Same equivalence on a structurally different spec (no zip, tcp)."""
    doc = {
        "campaign": {
            "name": "merge-test-2",
            "builder": "nav_pairs_sorted",
            "seeds": [3],
            "duration_s": 0.15,
        },
        "sweep": {"nav_ms": [0.0, 2.0], "n_greedy": [1]},
    }
    spec = spec_from_dict(doc)
    single = tmp_path / "single"
    run_campaign(spec, out_dir=single)
    fleet_out = tmp_path / "fleet"
    result = run_fleet(spec, fleet_out, n_shards=2, executor="local")
    assert result.ok
    assert metrics_fingerprint(fleet_out) == metrics_fingerprint(single)
    assert (fleet_out / "results.csv").read_bytes() == (
        single / "results.csv"
    ).read_bytes()
