"""Cache correctness: hits, misses, invalidation, corruption tolerance."""

from __future__ import annotations

import json

import pytest

from repro.experiments.common import run_nav_pairs
from repro.mac.frames import FrameKind
from repro.phy.params import dot11a
from repro.runtime import (
    QUARANTINE_DIRNAME,
    ResultCache,
    canonical,
    code_version_token,
    map_over_seeds,
    result_checksum,
    seed_job,
)

RESULT = {"goodput_R0": 1.25, "goodput_R1": 0.5}


def make_spec(**overrides):
    kwargs = {"duration_s": 0.3, "transport": "udp", "nav_inflation_us": 600.0}
    kwargs.update(overrides)
    return seed_job(run_nav_pairs, **kwargs).with_seed(1)


def test_hit_on_identical_spec(tmp_path):
    cache = ResultCache(tmp_path, version="v1")
    spec = make_spec()
    assert cache.get(spec) is None
    cache.put(spec, RESULT)
    # A freshly constructed but identical spec must hit.
    assert cache.get(make_spec()) == RESULT
    assert cache.stats() == {
        "hits": 1,
        "misses": 1,
        "stores": 1,
        "errors": 0,
        "quarantined": 0,
        "claims": 0,
        "claim_conflicts": 0,
        "lock_breaks": 0,
        "waits": 0,
    }


def test_miss_on_changed_kwarg_seed_or_duration(tmp_path):
    cache = ResultCache(tmp_path, version="v1")
    cache.put(make_spec(), RESULT)
    assert cache.get(make_spec(nav_inflation_us=700.0)) is None  # kwarg
    assert cache.get(make_spec().with_seed(2)) is None  # seed
    assert cache.get(make_spec(duration_s=2.0)) is None  # duration
    assert cache.get(make_spec()) == RESULT  # sanity: original still hits


def test_invalidation_when_code_version_changes(tmp_path):
    spec = make_spec()
    ResultCache(tmp_path, version="v1").put(spec, RESULT)
    assert ResultCache(tmp_path, version="v2").get(spec) is None
    assert ResultCache(tmp_path, version="v1").get(spec) == RESULT


def test_corrupted_entry_warns_and_recomputes(tmp_path):
    cache = ResultCache(tmp_path, version="v1")
    spec = make_spec()
    cache.put(spec, RESULT)
    cache.path_for(spec).write_text("{ not json !!")
    with pytest.warns(RuntimeWarning, match="corrupted cache entry"):
        assert cache.get(spec) is None
    assert cache.errors == 1
    # The engine falls back to recomputation and repairs the entry.
    cache.path_for(spec).write_text("{ not json !!")
    job = seed_job(run_nav_pairs, **dict(spec.kwargs))
    with pytest.warns(RuntimeWarning, match="corrupted cache entry"):
        results = map_over_seeds(job, [1], cache=cache)
    assert results[1] == cache.get(spec)  # repaired: clean hit, real result


def test_entry_with_wrong_shape_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path, version="v1")
    spec = make_spec()
    cache.path_for(spec).parent.mkdir(parents=True, exist_ok=True)
    cache.path_for(spec).write_text(json.dumps({"result": [1, 2, 3]}))
    with pytest.warns(RuntimeWarning, match="corrupted"):
        assert cache.get(spec) is None


def test_truncated_entry_is_quarantined_and_recomputed(tmp_path):
    cache = ResultCache(tmp_path, version="v1")
    spec = make_spec()
    cache.put(spec, RESULT)
    path = cache.path_for(spec)
    path.write_text(path.read_text()[: len(path.read_text()) // 2])  # torn write
    with pytest.warns(RuntimeWarning, match="corrupted cache entry"):
        assert cache.get(spec) is None
    # The corrupt file was moved aside, not left in place to recur.
    assert not path.exists()
    assert (tmp_path / QUARANTINE_DIRNAME / path.name).exists()
    assert cache.stats()["quarantined"] == 1
    cache.put(spec, RESULT)
    assert cache.get(spec) == RESULT  # repaired entry is clean


def test_wrong_checksum_is_quarantined(tmp_path):
    cache = ResultCache(tmp_path, version="v1")
    spec = make_spec()
    cache.put(spec, RESULT)
    path = cache.path_for(spec)
    payload = json.loads(path.read_text())
    payload["result"]["goodput_R0"] = 999.0  # bit-flip without checksum update
    path.write_text(json.dumps(payload))
    with pytest.warns(RuntimeWarning, match="checksum mismatch"):
        assert cache.get(spec) is None
    assert cache.stats()["quarantined"] == 1


def test_entry_missing_checksum_field_is_quarantined(tmp_path):
    cache = ResultCache(tmp_path, version="v1")
    spec = make_spec()
    cache.put(spec, RESULT)
    path = cache.path_for(spec)
    payload = json.loads(path.read_text())
    del payload["checksum"]  # entry written by a pre-checksum cache
    path.write_text(json.dumps(payload))
    with pytest.warns(RuntimeWarning, match="corrupted cache entry"):
        assert cache.get(spec) is None


def test_cache_dir_deleted_mid_run_recomputes(tmp_path):
    import shutil

    cache_dir = tmp_path / "cache"
    cache = ResultCache(cache_dir)
    job = seed_job(run_nav_pairs, duration_s=0.2, transport="udp")
    first = map_over_seeds(job, (1,), cache=cache)
    shutil.rmtree(cache_dir)  # the rug-pull: someone rm -rf'd the cache
    second = map_over_seeds(job, (1,), cache=cache)  # recomputes, re-stores
    assert second == first
    assert cache.stats()["stores"] == 2
    assert cache.get(job.with_seed(1)) == first[1]  # directory was recreated


def test_checksums_roundtrip_via_result_checksum(tmp_path):
    cache = ResultCache(tmp_path, version="v1")
    spec = make_spec()
    cache.put(spec, RESULT)
    payload = json.loads(cache.path_for(spec).read_text())
    assert payload["checksum"] == result_checksum(RESULT)
    assert payload["checksum"] == result_checksum(dict(reversed(RESULT.items())))


def test_map_over_seeds_uses_cache(tmp_path):
    cache = ResultCache(tmp_path)
    job = seed_job(run_nav_pairs, duration_s=0.2, transport="udp")
    first = map_over_seeds(job, (1, 2), cache=cache)
    assert cache.stats()["stores"] == 2
    second = map_over_seeds(job, (1, 2), cache=cache)
    assert second == first
    assert cache.stats()["hits"] == 2
    assert cache.stats()["stores"] == 2  # nothing recomputed


def test_code_version_token_is_stable_and_hexish():
    token = code_version_token()
    assert token == code_version_token()
    assert len(token) == 16
    int(token, 16)  # raises if not hex


def test_canonical_handles_runner_argument_types():
    encoded = canonical(
        {
            "frames": frozenset({FrameKind.CTS, FrameKind.ACK}),
            "phy": dot11a(6.0),
            "flags": (False, True),
            "nested": {"b": 2, "a": 1},
        }
    )
    # Must be JSON-serialisable and order-independent.
    assert json.dumps(encoded, sort_keys=True) == json.dumps(
        canonical(
            {
                "nested": {"a": 1, "b": 2},
                "flags": [False, True],
                "phy": dot11a(6.0),
                "frames": frozenset({FrameKind.ACK, FrameKind.CTS}),
            }
        ),
        sort_keys=True,
    )


def test_canonical_rejects_unstable_types():
    class Opaque:
        pass

    with pytest.raises(TypeError, match="canonicalise"):
        canonical({"bad": Opaque()})


# ------------------------------------------------- advisory entry locking ---


def test_claim_excludes_second_claim_until_released(tmp_path):
    cache = ResultCache(tmp_path, version="v1")
    spec = make_spec()
    claim = cache.try_claim(spec)
    assert claim is not None
    # Same process, lock already held: the second claim is refused (the lock
    # carries our live pid, so it is not stale either).
    assert cache.try_claim(spec) is None
    assert cache.stats()["claim_conflicts"] == 1
    claim.release()
    claim.release()  # idempotent
    again = cache.try_claim(spec)
    assert again is not None
    again.release()
    assert cache.stats()["claims"] == 2


def test_claims_for_different_specs_are_independent(tmp_path):
    cache = ResultCache(tmp_path, version="v1")
    with cache.try_claim(make_spec()) as first:
        second = cache.try_claim(make_spec(nav_inflation_us=700.0))
        assert first is not None and second is not None
        second.release()


def test_stale_lock_of_dead_process_is_broken(tmp_path):
    import os
    import subprocess
    import sys

    cache = ResultCache(tmp_path, version="v1")
    spec = make_spec()
    # A pid that provably belonged to a process that has exited.
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    lock = cache.lock_path_for(spec)
    lock.parent.mkdir(parents=True, exist_ok=True)
    lock.write_text(str(proc.pid))
    claim = cache.try_claim(spec)
    assert claim is not None  # stolen from the dead holder
    assert cache.stats()["lock_breaks"] == 1
    assert lock.read_text().strip() == str(os.getpid())
    claim.release()


def test_old_unreadable_lock_is_broken_by_age(tmp_path):
    import os
    import time

    cache = ResultCache(tmp_path, version="v1", lock_stale_s=10.0)
    spec = make_spec()
    lock = cache.lock_path_for(spec)
    lock.parent.mkdir(parents=True, exist_ok=True)
    lock.write_text("not-a-pid")  # torn write: pid unreadable, age decides
    old = time.time() - 60.0
    os.utime(lock, (old, old))
    claim = cache.try_claim(spec)
    assert claim is not None
    assert cache.stats()["lock_breaks"] == 1
    claim.release()


def test_wait_for_returns_entry_published_by_holder(tmp_path):
    import threading
    import time

    holder = ResultCache(tmp_path, version="v1")
    waiter = ResultCache(tmp_path, version="v1")
    spec = make_spec()
    claim = holder.try_claim(spec)
    assert claim is not None

    def publish():
        time.sleep(0.15)
        holder.put(spec, RESULT)
        claim.release()

    thread = threading.Thread(target=publish)
    thread.start()
    try:
        assert waiter.wait_for(spec, timeout_s=10.0, poll_s=0.01) == RESULT
    finally:
        thread.join()
    assert waiter.stats()["waits"] == 1
    assert waiter.stats()["hits"] == 1


def test_wait_for_gives_up_fast_when_holder_died(tmp_path):
    import subprocess
    import sys
    import time

    cache = ResultCache(tmp_path, version="v1")
    spec = make_spec()
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    lock = cache.lock_path_for(spec)
    lock.parent.mkdir(parents=True, exist_ok=True)
    lock.write_text(str(proc.pid))
    start = time.monotonic()
    assert cache.wait_for(spec, timeout_s=30.0, poll_s=0.01) is None
    assert time.monotonic() - start < 5.0  # dead holder detected, no timeout


def test_wait_for_times_out_on_live_holder_without_entry(tmp_path):
    cache = ResultCache(tmp_path, version="v1")
    spec = make_spec()
    claim = cache.try_claim(spec)
    try:
        assert cache.wait_for(spec, timeout_s=0.1, poll_s=0.01) is None
        assert cache.stats()["misses"] == 1
    finally:
        claim.release()


def test_map_over_seeds_waits_for_a_concurrent_claimant(tmp_path):
    """Two 'processes' sharing a cache dir: the loser of the claim race waits
    for the winner's store instead of recomputing the entry."""
    import threading
    import time

    winner = ResultCache(tmp_path)
    loser = ResultCache(tmp_path)
    job = seed_job(run_nav_pairs, duration_s=0.2, transport="udp")
    spec = job.with_seed(1)
    claim = winner.try_claim(spec)
    assert claim is not None

    def compute_and_publish():
        time.sleep(0.2)
        winner.put(spec, RESULT)
        claim.release()

    thread = threading.Thread(target=compute_and_publish)
    thread.start()
    try:
        results = map_over_seeds(job, [1], cache=loser)
    finally:
        thread.join()
    # The loser never computed: RESULT is the winner's (fake) payload, which
    # a real simulation of this job would not produce.
    assert results[1] == RESULT
    assert loser.stats()["stores"] == 0
    assert loser.stats()["waits"] == 1


def test_map_over_seeds_recomputes_after_claimant_crash(tmp_path):
    import subprocess
    import sys

    cache = ResultCache(tmp_path)
    job = seed_job(run_nav_pairs, duration_s=0.2, transport="udp")
    spec = job.with_seed(1)
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    lock = cache.lock_path_for(spec)
    lock.parent.mkdir(parents=True, exist_ok=True)
    lock.write_text(str(proc.pid))  # a claim whose holder is dead
    results = map_over_seeds(job, [1], cache=cache)
    assert results[1] == cache.get(spec)  # computed + stored despite the lock
    assert cache.stats()["stores"] == 1


def test_code_version_salt_is_folded_into_the_token():
    """Bumping CODE_VERSION_SALT must invalidate every cache entry even when
    no source file changed (the fast-path epoch fence)."""
    from unittest import mock

    from repro.runtime import cache as cache_mod

    baseline = cache_mod.code_version_token()
    # The memoized part is the source digest; the backend key is live.
    cache_mod._source_token.cache_clear()
    try:
        with mock.patch.object(cache_mod, "CODE_VERSION_SALT", "different-epoch"):
            bumped = cache_mod.code_version_token()
    finally:
        cache_mod._source_token.cache_clear()
    assert bumped != baseline
    assert cache_mod.code_version_token() == baseline  # restored


def test_salt_bump_invalidates_stored_entries(tmp_path):
    spec = make_spec()
    ResultCache(tmp_path, version="token-epoch-1").put(spec, RESULT)
    # A different token (as a salt bump produces) misses; the old one hits.
    assert ResultCache(tmp_path, version="token-epoch-2").get(spec) is None
    assert ResultCache(tmp_path, version="token-epoch-1").get(spec) == RESULT
