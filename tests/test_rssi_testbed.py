"""Unit tests for the RSSI measurement campaign model (Figs 21-22)."""

import random

import pytest

from repro.testbed.rssi import RssiCampaign, RssiModelParams, roc_curve


def make_campaign(n_nodes=6, packets=40, seed=4):
    campaign = RssiCampaign(random.Random(seed), n_nodes=n_nodes)
    campaign.run(packets_per_sender=packets)
    return campaign


def test_sample_counts():
    campaign = make_campaign(n_nodes=5, packets=30)
    # 5 senders x 4 receivers x 30 packets.
    assert len(campaign.samples) == 5 * 4 * 30


def test_minimum_node_count():
    with pytest.raises(ValueError):
        RssiCampaign(random.Random(0), n_nodes=1)


def test_link_samples_grouping():
    campaign = make_campaign(n_nodes=4, packets=10)
    links = campaign.link_samples()
    assert len(links) == 4 * 3
    assert all(len(v) == 10 for v in links.values())


def test_rssi_stability_property():
    """The paper's Figure 21 finding: ~95 % of samples within ~1 dB."""
    campaign = make_campaign(n_nodes=8, packets=100)
    cdf = dict(campaign.deviation_cdf([1.0]))
    assert cdf[1.0] > 0.85


def test_deviation_cdf_monotone_and_bounded():
    campaign = make_campaign()
    cdf = campaign.deviation_cdf([0.1, 0.5, 1.0, 2.0, 10.0])
    values = [p for _x, p in cdf]
    assert values == sorted(values)
    assert all(0.0 <= p <= 1.0 for p in values)
    assert values[-1] > 0.99


def test_cdf_requires_run():
    campaign = RssiCampaign(random.Random(0), n_nodes=3)
    with pytest.raises(RuntimeError):
        campaign.deviation_cdf([1.0])


def test_roc_tradeoff_shape():
    campaign = make_campaign(n_nodes=8, packets=60)
    rows = roc_curve(campaign, [0.0, 1.0, 3.0])
    fps = [fp for _t, fp, _fn in rows]
    fns = [fn for _t, _fp, fn in rows]
    assert fps == sorted(fps, reverse=True)  # FP falls with threshold
    assert fns == sorted(fns)  # FN rises with threshold
    assert fps[0] == pytest.approx(1.0)  # threshold 0 flags everything


def test_roc_at_1db_is_balanced():
    campaign = make_campaign(n_nodes=10, packets=80)
    ((_t, fp, fn),) = roc_curve(campaign, [1.0])
    assert fp < 0.15
    assert fn < 0.15


def test_distinct_links_have_distinct_medians():
    """Different transmitters look different to the same receiver — the
    separability the spoof detector relies on."""
    campaign = make_campaign(n_nodes=6, packets=50)
    from statistics import median

    links = campaign.link_samples()
    medians = {link: median(v) for link, v in links.items()}
    receiver = 0
    senders = [m for (s, r), m in medians.items() if r == receiver]
    spread = max(senders) - min(senders)
    assert spread > 3.0  # well above the 1 dB detection threshold


def test_custom_params_respected():
    params = RssiModelParams(jitter_core_sigma_db=0.0, jitter_tail_prob=0.0)
    campaign = RssiCampaign(random.Random(1), n_nodes=3, params=params)
    campaign.run(packets_per_sender=10)
    # No jitter: every deviation is exactly zero.
    assert max(campaign.deviations_from_median()) == 0.0
