"""Deterministic TCP Reno mechanics, driven without a network.

A fake node captures outgoing segments; the test plays the network role and
feeds ACKs back, pinning down the congestion-control state machine exactly:
slow start, dup-ACK fast retransmit, recovery inflation/deflation, RTO
backoff, and Karn's sampling rule.
"""

import pytest

from repro.sim.engine import Simulator
from repro.transport.packets import Packet, PacketKind
from repro.transport.tcp import TcpSender


class FakeNode:
    """Stands in for a Node: records every packet the sender emits."""

    def __init__(self, name="snd"):
        self.name = name
        self.sent: list[Packet] = []
        self._agents = {}

    def bind_agent(self, flow_id, agent):
        self._agents[flow_id] = agent

    def send_packet(self, packet):
        self.sent.append(packet)


def make_sender(**kwargs):
    sim = Simulator()
    node = FakeNode()
    sender = TcpSender(sim, node, "flow", "rcv", **kwargs)
    return sim, node, sender


def ack(sender, ackno):
    packet = Packet(PacketKind.TCP_ACK, "flow", "rcv", "snd", ack=ackno)
    sender.receive(packet)


def test_starts_with_one_segment():
    sim, node, sender = make_sender()
    sender.start()
    sim.run(until=1.0)
    assert [p.seq for p in node.sent] == [0]
    assert sender.cwnd == 1.0


def test_slow_start_doubles_per_rtt():
    sim, node, sender = make_sender()
    sender.start()
    sim.run(until=1.0)
    ack(sender, 1)  # cwnd 1 -> 2, sends 2
    assert sender.cwnd == 2.0
    assert [p.seq for p in node.sent] == [0, 1, 2]
    ack(sender, 2)
    ack(sender, 3)  # cwnd -> 4
    assert sender.cwnd == 4.0


def test_congestion_avoidance_above_ssthresh():
    sim, node, sender = make_sender()
    sender.ssthresh = 2.0
    sender.cwnd = 2.0
    sender.snd_una = 0
    sender.snd_nxt = 2
    ack(sender, 1)
    # Above ssthresh: cwnd += 1/cwnd.
    assert sender.cwnd == pytest.approx(2.5)


def test_three_dup_acks_trigger_fast_retransmit():
    sim, node, sender = make_sender()
    sender.start()
    sim.run(until=1.0)
    for ackno in (1, 2, 3, 4):
        ack(sender, ackno)
    node.sent.clear()
    # Three duplicate ACKs for seq 4.
    ack(sender, 4)
    ack(sender, 4)
    assert sender.fast_retransmits == 0
    ack(sender, 4)
    assert sender.fast_retransmits == 1
    assert node.sent[0].seq == 4  # the hole is retransmitted first
    assert sender._recover >= 0  # in fast recovery
    # ssthresh = flight/2, cwnd = ssthresh + 3.
    assert sender.cwnd == pytest.approx(sender.ssthresh + 3.0)


def test_recovery_inflates_on_further_dups_and_deflates_on_new_ack():
    sim, node, sender = make_sender()
    sender.start()
    sim.run(until=1.0)
    for ackno in (1, 2, 3, 4):
        ack(sender, ackno)
    for _ in range(3):
        ack(sender, 4)
    cwnd_in_recovery = sender.cwnd
    ack(sender, 4)  # 4th dup: inflate by 1
    assert sender.cwnd == pytest.approx(cwnd_in_recovery + 1.0)
    ack(sender, sender.snd_nxt)  # recovery complete
    assert sender._recover == -1
    assert sender.cwnd == pytest.approx(sender.ssthresh)


def test_rto_collapses_window_and_doubles_backoff():
    sim, node, sender = make_sender(initial_rto_us=1000.0, min_rto_us=1000.0)
    sender.start()
    sim.run(until=1.0)  # seg 0 out, RTO armed
    sim.run(until=1500.0)  # RTO fires
    assert sender.timeouts == 1
    assert sender.cwnd == 1.0
    assert sender._backoff == 2
    assert node.sent[-1].seq == 0  # retransmission of the hole
    sim.run(until=1500.0 + 2100.0)  # second RTO after doubled interval
    assert sender.timeouts == 2
    assert sender._backoff == 4


def test_new_ack_resets_rto_backoff():
    sim, node, sender = make_sender(initial_rto_us=1000.0, min_rto_us=1000.0)
    sender.start()
    sim.run(until=1500.0)
    assert sender._backoff == 2
    ack(sender, 1)
    assert sender._backoff == 1


def test_karn_ignores_retransmitted_segments_for_rtt():
    sim, node, sender = make_sender(initial_rto_us=1000.0, min_rto_us=100.0)
    sender.start()
    sim.run(until=1500.0)  # seg 0 timed, then retransmitted on RTO
    assert 0 in sender._retransmitted
    ack(sender, 1)  # ambiguous ACK: no RTT sample may be taken
    assert sender._srtt is None


def test_rtt_sampling_from_clean_segment():
    sim, node, sender = make_sender()
    sender.start()
    sim.run(until=1.0)
    sim.schedule(5000.0, lambda: ack(sender, 1))
    sim.run(until=6000.0)
    assert sender._srtt == pytest.approx(4999.0, rel=0.01)


def test_window_cap_limits_inflight():
    sim, node, sender = make_sender(window=4)
    sender.cwnd = 100.0
    sender.start()
    sim.run(until=1.0)
    assert len(node.sent) == 4  # capped by the advertised window


def test_old_ack_is_ignored():
    sim, node, sender = make_sender()
    sender.start()
    sim.run(until=1.0)
    for ackno in (1, 2, 3):
        ack(sender, ackno)
    before = (sender.cwnd, sender.snd_una, sender._dupacks)
    ack(sender, 1)  # stale ACK below snd_una
    assert (sender.cwnd, sender.snd_una, sender._dupacks) == before


def test_non_ack_packets_ignored():
    sim, node, sender = make_sender()
    sender.start()
    sim.run(until=1.0)
    before = sender.snd_una
    sender.receive(Packet(PacketKind.TCP_DATA, "flow", "rcv", "snd", seq=0))
    assert sender.snd_una == before
