"""Golden-value regression tests.

Fully deterministic scenarios (fixed seeds, named RNG streams) pinned to
their current outputs with tight tolerances.  These are the tripwire for
accidental behavior changes in the simulator core: a refactor that shifts
any of these numbers by more than a few percent changed the physics, not
just the code.  Update the constants deliberately when the model itself is
meant to change.
"""

import pytest

from repro.core.greedy import GreedyConfig
from repro.mac.frames import FrameKind
from repro.net.scenario import Scenario
from repro.phy.error import set_ber_all_pairs

US = 1_000_000.0


def test_golden_udp_fair_share():
    s = Scenario(seed=1)
    for name in ("NS", "GS", "NR", "GR"):
        s.add_wireless_node(name)
    f1, k1 = s.udp_flow("NS", "NR")
    f2, k2 = s.udp_flow("GS", "GR")
    f1.start()
    f2.start()
    s.run(2.0)
    assert k1.goodput_mbps(2 * US) == pytest.approx(1.942, rel=0.02)
    assert k2.goodput_mbps(2 * US) == pytest.approx(1.720, rel=0.02)


def test_golden_udp_saturation_total():
    """Aggregate saturation goodput of an 802.11b RTS/CTS cell: ~3.6 Mbps."""
    s = Scenario(seed=1)
    for name in ("NS", "GS", "NR", "GR"):
        s.add_wireless_node(name)
    f1, k1 = s.udp_flow("NS", "NR")
    f2, k2 = s.udp_flow("GS", "GR")
    f1.start()
    f2.start()
    s.run(2.0)
    total = k1.goodput_mbps(2 * US) + k2.goodput_mbps(2 * US)
    assert total == pytest.approx(3.66, rel=0.03)


def test_golden_nav_inflation_starvation_point():
    s = Scenario(seed=1)
    s.add_wireless_node("NS")
    s.add_wireless_node("GS")
    s.add_wireless_node("NR")
    s.add_wireless_node(
        "GR", greedy=GreedyConfig.nav_inflator(600.0, {FrameKind.CTS})
    )
    f1, k1 = s.udp_flow("NS", "NR")
    f2, k2 = s.udp_flow("GS", "GR")
    f1.start()
    f2.start()
    s.run(2.0)
    assert k1.goodput_mbps(2 * US) < 0.05
    assert k2.goodput_mbps(2 * US) == pytest.approx(3.47, rel=0.02)


def test_golden_tcp_lossless_throughput():
    s = Scenario(seed=1)
    s.add_wireless_node("a")
    s.add_wireless_node("b")
    snd, rcv = s.tcp_flow("a", "b")
    snd.start()
    s.run(2.0)
    assert rcv.goodput_mbps(2 * US) == pytest.approx(2.22, rel=0.03)


def test_golden_event_count_is_stable():
    """Even the event count is deterministic for a fixed seed."""

    def count():
        s = Scenario(seed=9)
        s.add_wireless_node("a")
        s.add_wireless_node("b")
        src, _ = s.udp_flow("a", "b")
        src.start()
        s.run(0.5)
        return s.sim.events_processed

    first = count()
    assert first == count()
    assert first > 3_000


def test_golden_spoofing_operating_point():
    """The Figure 11 peak: BER 2e-4, GP 100, standard geometry."""
    s = Scenario(seed=2)
    s.add_wireless_node("NS", position=(0, 0))
    s.add_wireless_node("GS", position=(60, 60))
    s.add_wireless_node("NR", position=(10, 0))
    s.add_wireless_node(
        "GR", position=(48, 20), greedy=GreedyConfig.ack_spoofer(victims={"NR"})
    )
    set_ber_all_pairs(s.error_model, ["NS", "GS", "NR", "GR"], 2e-4)
    snd1, rcv1 = s.tcp_flow("NS", "NR")
    snd2, rcv2 = s.tcp_flow("GS", "GR")
    snd1.start()
    snd2.start()
    s.run(2.5)
    assert rcv2.goodput_mbps(2.5 * US) > 3.0 * rcv1.goodput_mbps(2.5 * US)
    assert s.macs["GR"].stats.tx_spoofed_ack == pytest.approx(88, abs=35)


def test_golden_phy_airtimes():
    """802.11b long-preamble airtimes, the base of every goodput number."""
    from repro.phy.params import dot11b

    phy = dot11b()
    assert phy.rts_time == pytest.approx(352.0)
    assert phy.cts_time == pytest.approx(304.0)
    assert phy.ack_time == pytest.approx(304.0)
    assert phy.data_time(1064) == pytest.approx(986.18, rel=1e-3)
    assert phy.eifs == pytest.approx(364.0)


def test_golden_fer_table():
    from repro.phy.error import frame_error_rate

    assert frame_error_rate(2e-4, 1092) == pytest.approx(0.2001, rel=1e-3)
    assert frame_error_rate(2e-4, 14) == pytest.approx(7.572e-3, rel=1e-3)
