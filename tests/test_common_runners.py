"""Smoke + contract tests for the shared experiment runners."""

import pytest

from repro.experiments import common
from repro.mac.frames import FrameKind


DURATION = 0.6


def test_run_nav_pairs_keys_and_ranges():
    out = common.run_nav_pairs(1, DURATION, transport="udp", n_pairs=3, n_greedy=1,
                               nav_inflation_us=5_000.0)
    for i in range(3):
        assert f"goodput_R{i}" in out
        assert out[f"goodput_R{i}"] >= 0.0
        assert f"cw_S{i}" in out
        assert f"rts_S{i}" in out
    assert "cwnd_S0" not in out  # UDP runs carry no TCP fields


def test_run_nav_pairs_tcp_reports_cwnd():
    out = common.run_nav_pairs(1, DURATION, transport="tcp")
    assert "cwnd_S0" in out and "cwnd_S1" in out
    assert out["cwnd_S0"] >= 1.0


def test_run_nav_shared_sender_keys():
    out = common.run_nav_shared_sender(
        1, DURATION, transport="tcp", n_receivers=3, nav_inflation_us=5_000.0
    )
    assert set(out) == {
        "goodput_R0", "goodput_R1", "goodput_R2",
        "cwnd_R0", "cwnd_R1", "cwnd_R2",
    }


def test_spoof_positions_guarantee_capture_at_senders():
    """The genuine receiver's ACK must be >= 10x stronger than the greedy
    receiver's spoof at every sender, for any pair count."""
    from repro.phy.propagation import PathLossModel, distance

    model = PathLossModel()
    for n_pairs in (2, 4, 8):
        positions = common._spoof_positions(n_pairs)
        greedy = positions[f"R{n_pairs - 1}"]
        for i in range(n_pairs):
            sender = positions[f"S{i}"]
            for j in range(n_pairs - 1):
                victim = positions[f"R{j}"]
                rss_victim = model.rss(1.0, distance(sender, victim))
                rss_greedy = model.rss(1.0, distance(sender, greedy))
                assert rss_victim / rss_greedy >= 10.0, (n_pairs, i, j)


def test_run_spoof_tcp_pairs_shared_ap():
    out = common.run_spoof_tcp_pairs(
        1, DURATION, ber=2e-4, n_pairs=2, shared_ap=True
    )
    assert "goodput_R0" in out and "goodput_R1" in out
    assert out["detections"] == 0.0  # GRC off by default


def test_run_spoof_udp_shared_ap_keys():
    out = common.run_spoof_udp_shared_ap(1, DURATION, ber=2e-4)
    assert set(out) == {"goodput_NR", "goodput_GR"}


def test_run_remote_tcp_routes_and_runs():
    out = common.run_remote_tcp(1, 1.0, wired_delay_us=2_000.0)
    assert out["goodput_NR"] > 0.0
    assert out["goodput_GR"] > 0.0


def test_run_fake_hidden_terminals_keys():
    out = common.run_fake_hidden_terminals(1, DURATION, fake_percentages=(0.0, 50.0))
    assert set(out) == {"goodput_R0", "goodput_R1", "cw_S0", "cw_S1"}


def test_run_fake_inherent_loss_with_ber_variant():
    out = common.run_fake_inherent_loss(
        1, DURATION, data_fer=0.0, greedy_flags=[False, True], ber=2e-4
    )
    assert out["goodput_R0"] > 0.0


def test_run_grc_nav_distance_keys():
    out = common.run_grc_nav_distance(1, DURATION, pair_distance_m=30.0)
    assert set(out) == {"goodput_R1", "goodput_R2", "nav_detections"}


def test_settings_constants_sane():
    assert common.FULL_DURATION_S > common.QUICK_DURATION_S
    assert len(common.FULL_SEEDS) == 5  # the paper's 5 repetitions
