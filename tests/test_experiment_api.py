"""The unified experiment API: RunSettings, the shim, and the registry.

Every experiment module exposes ``run(settings: RunSettings) ->
ExperimentResult`` via the :func:`repro.experiments.common.experiment_api`
decorator; the deprecated ``run(quick=True)`` form keeps working behind a
once-only DeprecationWarning.  The experiment registry
(:class:`repro.experiments.ExperimentEntry`) binds ids to paper artifacts,
runners, tags and campaign builders.
"""

from __future__ import annotations

import warnings

import pytest

import repro.experiments.common as common
from repro.experiments import (
    ALL_EXPERIMENTS,
    REGISTRY,
    entries,
    get,
    get_entry,
)
from repro.experiments.common import (
    RunSettings,
    experiment_api,
    resolve_settings,
)
from repro.stats.summary import ExperimentResult


@experiment_api
def _toy_run(settings: RunSettings) -> ExperimentResult:
    """A decorated runner cheap enough to call many times in tests."""
    result = ExperimentResult(
        name="toy", description="api test", columns=["mode", "seeds"]
    )
    result.add_row(mode=settings.mode, seeds=len(settings.seeds))
    if settings.telemetry:
        # Touch the ambient registry the decorator installed.
        from repro.obs import current_registry

        current_registry().inc("sim.toy.runs")
    return result


# ------------------------------------------------------------- RunSettings --


def test_run_settings_defaults_and_modes():
    full = RunSettings()
    assert full.mode == "full" and not full.is_quick and not full.telemetry
    quick = RunSettings.quick()
    assert quick.is_quick and quick.duration_s < full.duration_s
    assert RunSettings.for_mode(True) == quick
    assert RunSettings.for_mode(False) == full


def test_run_settings_replace_and_validation():
    tweaked = RunSettings().replace(telemetry=True, seeds=[9, 10])
    assert tweaked.telemetry and tweaked.seeds == (9, 10)
    with pytest.raises(ValueError, match="mode"):
        RunSettings(mode="fast")


# ---------------------------------------------------------------- the shim --


def test_run_accepts_settings_object():
    result = _toy_run(RunSettings.quick())
    assert result.rows[0]["mode"] == "quick"
    assert result.telemetry is None


def test_run_without_arguments_means_full():
    assert _toy_run().rows[0]["mode"] == "full"


def test_quick_keyword_still_works_and_warns_once():
    common._QUICK_SHIM_WARNED = False
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        first = _toy_run(quick=True)
        second = _toy_run(quick=True)
    assert first.rows[0]["mode"] == "quick"
    assert second.rows[0]["mode"] == "quick"
    deprecations = [w for w in caught if w.category is DeprecationWarning]
    assert len(deprecations) == 1, "the shim must warn exactly once per process"
    assert "RunSettings" in str(deprecations[0].message)


def test_legacy_positional_bool_is_treated_as_quick():
    common._QUICK_SHIM_WARNED = True  # silence; warn-once covered above
    assert _toy_run(True).rows[0]["mode"] == "quick"
    assert _toy_run(False).rows[0]["mode"] == "full"


def test_settings_and_quick_together_is_an_error():
    with pytest.raises(TypeError):
        _toy_run(RunSettings(), quick=True)
    with pytest.raises(TypeError):
        resolve_settings(True, quick=False)


def test_telemetry_setting_attaches_snapshot():
    result = _toy_run(RunSettings.quick().replace(telemetry=True))
    assert result.telemetry is not None
    assert result.telemetry.counters["sim.toy.runs"] == 1
    assert result.telemetry.meta["experiment"] == "test_experiment_api"


def test_every_registered_runner_is_decorated():
    for experiment_id in ALL_EXPERIMENTS:
        runner = get(experiment_id)
        assert hasattr(runner, "__wrapped__"), (
            f"{experiment_id}.run is not wrapped by experiment_api"
        )


# ---------------------------------------------------------------- registry --


def test_registry_entries_are_complete_and_ordered():
    extensions = [e for e in REGISTRY.values() if e.extension]
    assert len(extensions) >= 4  # autorate, sender_baseline, bursty, crash
    assert len(REGISTRY) == len(ALL_EXPERIMENTS) + len(extensions)
    for experiment_id, entry in REGISTRY.items():
        assert entry.id == experiment_id
        assert entry.artifact and entry.title and entry.tags
        assert entry.module, f"{experiment_id} has no module"


def test_get_entry_unknown_id_lists_known():
    with pytest.raises(KeyError, match="fig1"):
        get_entry("nope")


def test_entries_filter_by_tag():
    nav = entries(tag="nav")
    assert nav and all("nav" in e.tags for e in nav)
    assert entries(tag="no_such_tag") == []


def test_entry_default_settings_resolves_runner():
    entry = get_entry("fig1")
    assert entry.artifact == "Figure 1"
    assert entry.builder == "nav_pairs"
    assert isinstance(entry.default_settings(), RunSettings)
    assert entry.runner is get("fig1")


def test_builder_for_experiment_resolves_through_registry():
    from repro.campaign.builders import builder_for_experiment, get_builder

    assert builder_for_experiment("fig1") is get_builder("nav_pairs")
    with pytest.raises(ValueError, match="analytic or testbed"):
        builder_for_experiment("table1")


# ------------------------------------------------------------- PHY profiles --


def test_experiments_and_campaigns_share_phy_profiles():
    """One lookup table serves both call paths (no drift possible)."""
    from repro.campaign.spec import SpecError, spec_from_dict
    from repro.phy.profiles import PHY_PROFILES, profile_names, resolve_phy

    assert profile_names() == sorted(PHY_PROFILES)
    for name in profile_names():
        # The experiments' resolver accepts the name...
        params = resolve_phy(name)
        assert params is not None
        # ...and so does campaign spec validation.
        spec_from_dict(
            {
                "campaign": {
                    "name": "phy_ok",
                    "builder": "nav_pairs",
                    "seeds": [1],
                    "duration_s": 0.1,
                },
                "params": {"phy": name, "transport": "udp"},
                "sweep": {"nav_inflation_us": [0.0]},
            },
            source="<test>",
        )
    with pytest.raises(SpecError, match="unknown PHY profile"):
        spec_from_dict(
            {
                "campaign": {
                    "name": "phy_bad",
                    "builder": "nav_pairs",
                    "seeds": [1],
                    "duration_s": 0.1,
                },
                "params": {"phy": "dot11z"},
                "sweep": {"nav_inflation_us": [0.0]},
            },
            source="<test>",
        )


# ------------------------------------------------------- result round-trip --


def test_experiment_result_json_round_trip():
    result = ExperimentResult(
        name="Figure X", description="round trip", columns=["a", "b"]
    )
    result.add_row(a=1, b=2.5)
    restored = ExperimentResult.from_json(result.to_json())
    assert restored.name == result.name
    assert restored.rows == result.rows
    assert restored.schema_version == result.schema_version
    assert restored.telemetry is None


def test_experiment_result_round_trips_telemetry():
    result = _toy_run(RunSettings.quick().replace(telemetry=True))
    restored = ExperimentResult.from_json(result.to_json(indent=2))
    assert restored.telemetry is not None
    assert restored.telemetry.to_dict() == result.telemetry.to_dict()


def test_experiment_result_accepts_schema_v1():
    v1 = (
        '{"schema_version": 1, "name": "n", "description": "d", '
        '"columns": ["x"], "rows": [{"x": 1}]}'
    )
    restored = ExperimentResult.from_json(v1)
    assert restored.rows == [{"x": 1}]
    with pytest.raises(ValueError, match="schema_version"):
        ExperimentResult.from_json('{"schema_version": 99, "rows": []}')


# ------------------------------------------------------------- public API --


def test_package_reexports_public_api():
    import repro

    for name in (
        "Scenario",
        "RunSettings",
        "ExperimentResult",
        "MetricsRegistry",
        "TelemetrySnapshot",
        "FrameTracer",
        "capture",
        "resolve_phy",
    ):
        assert name in repro.__all__
        assert getattr(repro, name) is not None
