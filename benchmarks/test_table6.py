"""Table VI (testbed emulation): NAV on RTS-for-TCP-ACK starves the victim."""

from conftest import rows_by, run_experiment


def test_table6(benchmark):
    result = run_experiment(benchmark, "table6")
    rows = rows_by(result, "case")
    fair = rows[("no GR",)]
    assert 0.5 < fair["goodput_R1"] / max(fair["goodput_R2"], 1e-9) < 2.0
    greedy = rows[("1 GR",)]
    # Paper: 4.41 vs 0.04 Mbps.
    assert greedy["goodput_R1"] > 3.0
    assert greedy["goodput_R2"] < 0.3
