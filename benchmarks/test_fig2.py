"""Figure 2: NS's average CW climbs with NAV inflation, GS's stays at CW_min."""

from conftest import rows_by, run_experiment


def test_fig2_contention_windows(benchmark):
    result = run_experiment(benchmark, "fig2")
    rows = rows_by(result, "v_slots")
    # GS rides CW_min throughout.
    for row in result.rows:
        assert row["cw_GS"] < 45.0
    # NS's CW grows as inflation grows (collisions dominate its few sends).
    assert rows[(20,)]["cw_NS"] > rows[(0,)]["cw_NS"]
    assert rows[(20,)]["cw_NS"] > rows[(20,)]["cw_GS"]
