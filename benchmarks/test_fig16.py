"""Figure 16: remote senders — partial spoofing already pays at high RTT."""

from conftest import rows_by, run_experiment


def test_fig16_remote_gp(benchmark):
    result = run_experiment(benchmark, "fig16")
    rows = rows_by(result, "wired_delay_ms", "greedy_percentage")
    delay = 200
    honest = rows[(delay, 0.0)]
    partial = rows[(delay, 20.0)]
    full = rows[(delay, 100.0)]
    # Spoofing 20 % of sniffed frames already hurts the victim.
    assert partial["goodput_NR"] < honest["goodput_NR"]
    # Full spoofing gives the largest gap.
    gap_partial = partial["goodput_GR"] - partial["goodput_NR"]
    gap_full = full["goodput_GR"] - full["goodput_NR"]
    assert gap_full >= gap_partial - 0.1
    assert full["goodput_GR"] > full["goodput_NR"]
