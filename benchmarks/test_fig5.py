"""Figure 5: the Figure 4 sweep under 802.11a shows the same trend."""

from conftest import rows_by, run_experiment


def test_fig5_tcp_nav_11a(benchmark):
    result = run_experiment(benchmark, "fig5")
    rows = rows_by(result, "variant", "nav_inflation_ms")
    for variant in ("cts", "rts_cts", "ack", "all"):
        base = rows[(variant, 0.0)]
        top = rows[(variant, 31.0)]
        assert 0.5 < base["goodput_NR"] / max(base["goodput_GR"], 1e-9) < 2.0
        assert top["goodput_GR"] > 2.0 * max(top["goodput_NR"], 1e-3)
