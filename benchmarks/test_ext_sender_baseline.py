"""Extension bench: receiver-side misbehavior rivals the sender-side classic."""

from conftest import rows_by, run_experiment


def test_ext_sender_baseline(benchmark):
    result = run_experiment(benchmark, "ext_sender_baseline")
    rows = rows_by(result, "attack")
    honest = rows[("none",)]
    sender = rows[("selfish-sender",)]
    receiver = rows[("greedy-receiver",)]
    # Honest split is fair.
    assert 0.35 < honest["attacker_share"] < 0.65
    # Both attacks capture a clear majority of the medium.
    assert sender["attacker_share"] > 0.7
    assert receiver["attacker_share"] > 0.7
    # The paper's thesis: the *receiver* — without controlling a single
    # backoff — does at least comparable damage to the backoff cheater.
    assert receiver["attacker_share"] > sender["attacker_share"] - 0.1
