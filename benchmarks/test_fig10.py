"""Figure 10: shared sender dampens but does not remove the NAV-inflation gain."""

from conftest import rows_by, run_experiment


def test_fig10_shared_sender(benchmark):
    result = run_experiment(benchmark, "fig10")
    rows = rows_by(result, "subfigure", "nav_inflation_ms")
    # (a) TCP, 2 receivers: greedy receiver still wins at max inflation.
    top = rows[("a:tcp-2rx", 31.0)]
    assert top["goodput_GR"] > top["goodput_NR"]
    # (b) TCP, 8 receivers: smaller but present gain.
    many = rows[("b:tcp-8rx", 31.0)]
    assert many["goodput_GR"] > many["goodput_NR"]
    # (c) UDP: both flows sink together; no large greedy edge.
    udp_base = rows[("c:udp-2rx", 0.0)]
    udp_top = rows[("c:udp-2rx", 31.0)]
    total_base = udp_base["goodput_GR"] + udp_base["goodput_NR"]
    total_top = udp_top["goodput_GR"] + udp_top["goodput_NR"]
    assert total_top < total_base
    assert udp_top["goodput_GR"] < 2.0 * max(udp_top["goodput_NR"], 1e-3)
