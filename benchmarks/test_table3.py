"""Table III: the BER-to-FER mapping matches the paper's calibration."""

import math

from conftest import rows_by, run_experiment

#: The paper's Table III, for exact-row comparison.
PAPER = {
    1e-5: (3.799e-4, 4.399e-4, 1.119e-3, 1.130e-2),
    2e-4: (7.519e-3, 8.762e-3, 2.235e-2, 2.033e-1),
    3.2e-4: (1.121e-2, 1.398e-2, 3.521e-2, 3.048e-1),
    4.4e-4: (1.658e-2, 1.918e-2, 4.810e-2, 3.934e-1),
    8e-4: (2.995e-2, 3.460e-2, 8.574e-2, 5.971e-1),
}


def test_table3_fer(benchmark):
    result = run_experiment(benchmark, "table3")
    rows = rows_by(result, "ber")
    for ber, (ack_cts, rts, tcp_ack, tcp_data) in PAPER.items():
        row = rows[(ber,)]
        # Control frames match the paper closely (10 % absorbs the paper's
        # own rounding inconsistencies, e.g. its 3.2e-4 ACK/CTS row).
        assert math.isclose(row["fer_ack_cts"], ack_cts, rel_tol=0.10)
        assert math.isclose(row["fer_rts"], rts, rel_tol=0.10)
        # Data frames: ns-2 carried slightly larger headers; stay within 20 %.
        assert math.isclose(row["fer_tcp_ack"], tcp_ack, rel_tol=0.25)
        assert math.isclose(row["fer_tcp_data"], tcp_data, rel_tol=0.20)
