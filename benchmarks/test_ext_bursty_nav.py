"""Extension bench: NAV inflation under Gilbert-Elliott bursty interference.

* On every channel regime the NAV inflator starves its honest competitor.
* Burstiness *blunts* the attack: at equal average FER the victim keeps an
  order of magnitude more goodput on the bursty channel than the memoryless
  one, because fades break the CTS inflation chain.
"""

from conftest import rows_by, run_experiment


def test_ext_bursty_nav(benchmark):
    result = run_experiment(benchmark, "ext_bursty_nav")
    rows = rows_by(result, "channel", "nav_inflation_us")

    # The attack works on every channel regime.
    for channel in ("clean", "memoryless", "bursty"):
        honest = rows[(channel, 0.0)]
        greedy = rows[(channel, 31_000.0)]
        assert greedy["goodput_R0"] < 0.5 * honest["goodput_R0"]
        assert greedy["goodput_R1"] > honest["goodput_R1"]

    # Equal average FER: both impaired channels corrupt frames, only the
    # clean baseline is loss-free.
    assert rows[("clean", 0.0)]["corrupted_frames"] == 0
    assert rows[("memoryless", 0.0)]["corrupted_frames"] > 0
    assert rows[("bursty", 0.0)]["corrupted_frames"] > 0

    # Burstiness blunts the attack: the victim of an inflating receiver
    # keeps far more goodput when the same average loss arrives in bursts.
    victim_memoryless = rows[("memoryless", 31_000.0)]["goodput_R0"]
    victim_bursty = rows[("bursty", 31_000.0)]["goodput_R0"]
    assert victim_bursty > 10.0 * max(victim_memoryless, 1e-9)
