"""Extension bench: auto-rate interactions predicted by Section IX.

* Fake ACKs *reduce* the greedy receiver's goodput under ARF (the faked
  feedback drives the rate above what the channel supports).
* ACK spoofing hits the victim *harder* under ARF (its sender never falls
  back to a decodable rate).
"""

from conftest import rows_by, run_experiment


def test_ext_autorate(benchmark):
    result = run_experiment(benchmark, "ext_autorate")
    rows = rows_by(result, "scenario", "case")

    # Fake ACKs backfire under auto-rate.
    arf_honest = rows[("fake-ack", "ARF, honest")]
    arf_faking = rows[("fake-ack", "ARF, fake ACKs")]
    assert arf_faking["goodput_GR"] < 0.7 * arf_honest["goodput_GR"]
    # The faked feedback pushed the rate above the honest operating point.
    assert arf_faking["rate_final"] >= arf_honest["rate_final"]

    # Spoofing is worse for the victim under auto-rate than at a fixed,
    # well-chosen rate.
    arf_spoofed = rows[("spoof", "ARF, spoofing")]
    arf_clean = rows[("spoof", "ARF, honest")]
    assert arf_spoofed["goodput_NR"] < 0.3 * max(arf_clean["goodput_NR"], 1e-9)
    assert arf_spoofed["goodput_GR"] > arf_clean["goodput_GR"]
