"""Figure 17: ACK spoofing against UDP — present but milder than TCP."""

from conftest import rows_by, run_experiment


def test_fig17_spoof_udp(benchmark):
    result = run_experiment(benchmark, "fig17")
    rows = rows_by(result, "ber", "case")
    # Without losses, nothing to steal.
    base = rows[(0.0, "w R2 GR")]
    assert abs(base["goodput_GR"] - base["goodput_NR"]) < 0.5
    # With losses, the spoofer converts NR's retransmission time into its own
    # service time.
    ber = 4.4e-4
    honest = rows[(ber, "no GR")]
    attacked = rows[(ber, "w R2 GR")]
    assert 0.5 < honest["goodput_NR"] / max(honest["goodput_GR"], 1e-9) < 2.0
    assert attacked["goodput_GR"] > attacked["goodput_NR"]
