"""Table V: fake ACKs help under inherent (non-collision) losses."""

from conftest import rows_by, run_experiment


def test_table5_inherent_losses(benchmark):
    result = run_experiment(benchmark, "table5")
    rows = rows_by(result, "data_fer", "case")
    fer = 0.5
    honest = rows[(fer, "no GR")]
    one = rows[(fer, "1 GR")]
    two = rows[(fer, "2 GRs")]
    # Single faker: large gain over its honest baseline, victim loses.
    assert one["goodput_R2"] > 1.5 * honest["goodput_R2"]
    assert one["goodput_R1"] < honest["goodput_R1"]
    # Both faking: both do at least as well as honest (backoff was pure
    # waste under inherent loss) — the paper's "useful surviving technique".
    assert two["goodput_R1"] >= honest["goodput_R1"] * 0.95
    assert two["goodput_R2"] >= honest["goodput_R2"] * 0.95
