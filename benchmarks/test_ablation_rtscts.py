"""Ablation: RTS/CTS dependence of NAV inflation.

Inflated CTS NAV only exists when RTS/CTS is in use; inflated ACK NAV works
either way (Section IV-A's applicability discussion).
"""

from repro.core.greedy import GreedyConfig
from repro.mac.frames import FrameKind
from repro.net.scenario import Scenario

US = 1_000_000.0


def run_nav(frames, rts_enabled, seed=1, duration=1.5):
    s = Scenario(seed=seed, rts_enabled=rts_enabled)
    s.add_wireless_node("NS")
    s.add_wireless_node("GS")
    s.add_wireless_node("NR")
    s.add_wireless_node("GR", greedy=GreedyConfig.nav_inflator(10_000.0, frames))
    f1, k1 = s.udp_flow("NS", "NR")
    f2, k2 = s.udp_flow("GS", "GR")
    f1.start()
    f2.start()
    s.run(duration)
    return k1.goodput_mbps(duration * US), k2.goodput_mbps(duration * US)


def test_ablation_rtscts(benchmark):
    def run_all():
        return {
            "cts_with_rtscts": run_nav({FrameKind.CTS}, rts_enabled=True),
            "cts_without_rtscts": run_nav({FrameKind.CTS}, rts_enabled=False),
            "ack_without_rtscts": run_nav({FrameKind.ACK}, rts_enabled=False),
            "ack_with_rtscts": run_nav({FrameKind.ACK}, rts_enabled=True),
        }

    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    # CTS inflation needs RTS/CTS to exist at all.
    nr, gr = out["cts_with_rtscts"]
    assert gr > 5 * max(nr, 1e-3)
    nr, gr = out["cts_without_rtscts"]  # no CTS frames are ever sent
    assert 0.4 < nr / max(gr, 1e-9) < 2.5
    # ACK inflation hurts regardless of RTS/CTS.
    for key in ("ack_without_rtscts", "ack_with_rtscts"):
        nr, gr = out[key]
        assert gr > 5 * max(nr, 1e-3), key
