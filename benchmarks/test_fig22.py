"""Figure 22: a 1 dB threshold balances false positives and negatives."""

from conftest import rows_by, run_experiment


def test_fig22_roc(benchmark):
    result = run_experiment(benchmark, "fig22")
    rows = rows_by(result, "threshold_db")
    at_1db = rows[(1.0,)]
    assert at_1db["false_positive"] < 0.10
    assert at_1db["false_negative"] < 0.10
    # FP falls and FN rises with the threshold (trade-off shape).
    fps = result.column("false_positive")
    fns = result.column("false_negative")
    assert fps == sorted(fps, reverse=True)
    assert fns == sorted(fns)
