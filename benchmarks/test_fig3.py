"""Figure 3: Equations (1)-(2) track the simulated RTS sending ratio."""

from conftest import run_experiment


def test_fig3_model_accuracy(benchmark):
    result = run_experiment(benchmark, "fig3")
    for row in result.rows:
        assert row["abs_error"] < 0.15, row
    # Monotonic: the greedy sender's share grows with inflation in both the
    # simulation and the model.
    measured = result.column("measured_gs_share")
    model = result.column("model_gs_share")
    assert measured == sorted(measured)
    assert model == sorted(model)
    assert measured[-1] > 0.85
