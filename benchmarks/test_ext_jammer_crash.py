"""Extension bench: periodic jamming and a mid-run station crash/reboot.

* A crash of S0 hands airtime to the surviving pair and drops its queue.
* Jamming taxes both pairs without changing who wins.
"""

from conftest import rows_by, run_experiment


def test_ext_jammer_crash(benchmark):
    result = run_experiment(benchmark, "ext_jammer_crash")
    rows = rows_by(result, "duty_pct", "crash")

    quiet = rows[(0.0, False)]
    crashed = rows[(0.0, True)]
    # The crash costs the crashed pair goodput and drops its queued MSDUs...
    assert crashed["goodput_R0"] < quiet["goodput_R0"]
    assert crashed["s0_crash_dropped"] > 0
    assert quiet["s0_crash_dropped"] == 0
    # ... and the surviving pair reclaims the freed airtime.
    assert crashed["goodput_R1"] > quiet["goodput_R1"]

    jammed = rows[(25.0, False)]
    # Jamming fires and taxes both pairs roughly evenly: no winner flips.
    assert jammed["jam_bursts"] > 0 and quiet["jam_bursts"] == 0
    assert jammed["goodput_R0"] < quiet["goodput_R0"]
    assert jammed["goodput_R1"] < quiet["goodput_R1"]
    ratio = jammed["goodput_R0"] / jammed["goodput_R1"]
    assert 0.7 < ratio < 1.4

    # Crash and jammer compose: both effects visible at once.
    both = rows[(25.0, True)]
    assert both["goodput_R0"] < jammed["goodput_R0"]
    assert both["goodput_R1"] > jammed["goodput_R1"]
    assert both["s0_crash_dropped"] > 0
