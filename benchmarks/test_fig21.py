"""Figure 21: RSSI is stable — ~95 % of samples within 1 dB of the median."""

from conftest import rows_by, run_experiment


def test_fig21_rssi_stability(benchmark):
    result = run_experiment(benchmark, "fig21")
    rows = rows_by(result, "deviation_db")
    assert rows[(1.0,)]["cdf"] > 0.90
    assert rows[(5.0,)]["cdf"] > 0.99
    cdf = result.column("cdf")
    assert cdf == sorted(cdf)  # it is a CDF
