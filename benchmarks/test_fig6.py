"""Figure 6: one greedy receiver among 8 TCP flows."""

from conftest import rows_by, run_experiment


def test_fig6_eight_flows(benchmark):
    result = run_experiment(benchmark, "fig6")
    rows = rows_by(result, "nav_inflation_ms")
    base = rows[(0.0,)]
    # Honest baseline: the would-be greedy receiver is just another flow.
    assert base["goodput_GR"] < 2.5 * base["goodput_NR_mean"]
    # ~10 ms CTS NAV increase suffices to dominate 7 normal competitors.
    dominating = rows[(10.0,)]
    assert dominating["goodput_GR"] > 4.0 * dominating["goodput_NR_mean"]
    assert rows[(31.0,)]["goodput_GR"] > rows[(0.0,)]["goodput_GR"]
