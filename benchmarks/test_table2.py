"""Table II: TCP congestion windows, one- vs two-sender topologies."""

from conftest import rows_by, run_experiment


def test_table2_cwnd_gap(benchmark):
    result = run_experiment(benchmark, "table2")
    rows = rows_by(result, "nav_inflation_ms")
    base = rows[(0.0,)]
    # Honest: windows comparable everywhere.
    assert abs(base["cwnd_NS_NR"] - base["cwnd_GS_GR"]) < 8.0
    top = rows[(31.0,)]
    # The greedy flow keeps a larger window in both topologies...
    assert top["cwnd_GS_GR"] > top["cwnd_NS_NR"]
    assert top["cwnd_S_GR"] > top["cwnd_S_NR"]
    # ...and the gap is larger with separate senders than a shared one.
    gap_two = top["cwnd_GS_GR"] - top["cwnd_NS_NR"]
    gap_one = top["cwnd_S_GR"] - top["cwnd_S_NR"]
    assert gap_two > gap_one - 2.0
