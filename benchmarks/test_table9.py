"""Table IX (testbed emulation): CW clamp shifts share to the greedy flow."""

from conftest import rows_by, run_experiment


def test_table9(benchmark):
    result = run_experiment(benchmark, "table9")
    rows = rows_by(result, "case")
    fair = rows[("no GR",)]
    greedy = rows[("1 GR",)]
    # Modest but consistent: greedy flow up, victim down (paper: 2.79/2.35
    # from a noisy 2.08/2.99 baseline).
    assert greedy["goodput_GR"] > fair["goodput_GR"]
    assert greedy["goodput_NR"] < fair["goodput_NR"]
    assert greedy["goodput_GR"] > greedy["goodput_NR"]
