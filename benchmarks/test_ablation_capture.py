"""Ablation: the capture effect in the ACK-spoofing evaluation.

The paper's spoofing evaluation "considers capture effects so that there is
no collision even if both receivers send ACKs" (Section IV-B).  With capture
disabled, the spoofed ACK collides with the genuine one whenever the victim
*did* receive the frame — the attack degenerates into jamming, hurting the
victim through collisions but also costing the sender retransmissions.
"""

import pytest

from repro.core.greedy import GreedyConfig
from repro.net.scenario import Scenario
from repro.phy.error import set_ber_all_pairs

US = 1_000_000.0


def run_spoof(capture_enabled: bool, seed: int = 2, duration: float = 2.0):
    s = Scenario(seed=seed, capture_enabled=capture_enabled)
    s.add_wireless_node("NS", position=(0, 0))
    s.add_wireless_node("GS", position=(60, 60))
    s.add_wireless_node("NR", position=(10, 0))
    s.add_wireless_node(
        "GR", position=(48, 20), greedy=GreedyConfig.ack_spoofer(victims={"NR"})
    )
    set_ber_all_pairs(s.error_model, ["NS", "GS", "NR", "GR"], 2e-4)
    snd1, rcv1 = s.tcp_flow("NS", "NR")
    snd2, rcv2 = s.tcp_flow("GS", "GR")
    snd1.start()
    snd2.start()
    s.run(duration)
    return {
        "goodput_NR": rcv1.goodput_mbps(duration * US),
        "goodput_GR": rcv2.goodput_mbps(duration * US),
        "ns_retries": s.macs["NS"].stats.retries,
    }


def test_ablation_capture(benchmark):
    with_capture = benchmark.pedantic(
        lambda: run_spoof(capture_enabled=True), rounds=1, iterations=1
    )
    without_capture = run_spoof(capture_enabled=False)
    # With capture the spoofer gains cleanly.
    assert with_capture["goodput_GR"] > with_capture["goodput_NR"]
    # Without capture, every spoof collides with a genuine ACK: the victim's
    # sender sees far more MAC-level retries (jamming signature) ...
    assert without_capture["ns_retries"] > 2 * with_capture["ns_retries"]
    # ... and the victim is still degraded.
    assert without_capture["goodput_NR"] < with_capture["goodput_NR"] * 1.2
