"""Figure 24: GRC recovers from ACK spoofing across loss rates."""

from conftest import rows_by, run_experiment


def test_fig24_grc_spoof(benchmark):
    result = run_experiment(benchmark, "fig24")
    rows = rows_by(result, "ber", "case")
    ber = 2e-4
    base = rows[(ber, "no GR")]
    attacked = rows[(ber, "GR, no GRC")]
    protected = rows[(ber, "GR + GRC")]
    # Attack works without GRC.
    assert attacked["goodput_GR"] > 1.5 * max(attacked["goodput_NR"], 1e-3)
    # GRC restores the victim toward its no-attack goodput and detects.
    assert protected["goodput_NR"] > 2.0 * attacked["goodput_NR"]
    assert protected["goodput_NR"] > 0.5 * base["goodput_NR"]
    assert protected["detections"] > 0
