"""Figure 13: two mutual spoofers destroy total goodput."""

from conftest import rows_by, run_experiment


def test_fig13_mutual_spoofers(benchmark):
    result = run_experiment(benchmark, "fig13")
    rows = rows_by(result, "greedy_percentage", "n_greedy")
    gp = 100.0
    honest_total = rows[(gp, 0)]["total"]
    both_total = rows[(gp, 2)]["total"]
    # Mutual spoofing disables MAC retransmission for everyone: total drops.
    assert both_total < honest_total
    # Single spoofer still wins individually.
    one = rows[(gp, 1)]
    assert one["goodput_R1"] > one["goodput_R0"]
