"""Figure 1: UDP goodput under CTS NAV inflation — starvation at 0.6 ms."""

from conftest import rows_by, run_experiment


def test_fig1_nav_inflation_udp(benchmark):
    result = run_experiment(benchmark, "fig1")
    rows = rows_by(result, "alpha")
    fair = rows[(0,)]
    # Honest baseline: both flows within 2x of each other.
    assert 0.5 < fair["goodput_NR"] / fair["goodput_GR"] < 2.0
    # The paper's headline: 0.6 ms inflation (alpha=6) starves the victim.
    starved = rows[(6,)]
    assert starved["goodput_NR"] < 0.1
    assert starved["goodput_GR"] > 2.5
    # And it only gets worse toward the NAV maximum.
    assert rows[(310,)]["goodput_GR"] >= starved["goodput_GR"] * 0.9
