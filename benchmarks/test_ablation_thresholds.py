"""Ablation: detector threshold sensitivity.

The paper picks 1 dB for the RSSI spoof detector (Figure 22).  This ablation
verifies the operating point inside the full pipeline: a too-loose threshold
stops flagging spoofed ACKs and the victim's goodput collapses again.
"""

from repro.experiments.common import run_spoof_tcp_pairs


def run_with_threshold(threshold_db, seed=1, duration=2.5):
    return run_spoof_tcp_pairs(
        seed,
        duration,
        ber=2e-4,
        spoof_percentage=100.0,
        grc=True,
        grc_threshold_db=threshold_db,
    )


def test_ablation_rssi_threshold(benchmark):
    tight = benchmark.pedantic(
        lambda: run_with_threshold(1.0), rounds=1, iterations=1
    )
    loose = run_with_threshold(50.0)  # effectively disables detection
    # At 1 dB the detector flags spoofed ACKs and protects the victim.
    assert tight["detections"] > 0
    assert loose["detections"] == 0
    assert tight["goodput_R0"] > 1.5 * max(loose["goodput_R0"], 1e-3)
