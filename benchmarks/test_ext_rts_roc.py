"""Attack-zoo bench: the streaming RTS-flood detector's ROC bends.

* Low thresholds always catch the flooder but also flag honest retries.
* Mid thresholds are clean: flooder caught, no honest sender flagged.
* High thresholds (above the ~10 flood RTS per window) miss entirely.
"""

from conftest import rows_by, run_experiment


def test_ext_rts_roc(benchmark):
    result = run_experiment(benchmark, "ext_rts_roc")
    rows = rows_by(result, "threshold")

    low, mid, high = rows[(1.0,)], rows[(4.0,)], rows[(16.0,)]
    # The flooder is flagged below the per-window flood count, missed above.
    assert low["true_positive"] == 1.0
    assert mid["true_positive"] == 1.0
    assert high["true_positive"] == 0.0
    assert high["detections"] == 0.0
    # Honest RTS retries only trip the most trigger-happy threshold.
    assert low["false_positive"] >= mid["false_positive"]
    assert mid["false_positive"] <= 0.5
    # Detection rates fall monotonically as the threshold rises.
    assert low["detections"] >= mid["detections"] >= high["detections"]
