"""Figure 15: remote TCP senders — spoofing wins across wireline latencies."""

from conftest import rows_by, run_experiment


def test_fig15_remote_senders(benchmark):
    result = run_experiment(benchmark, "fig15")
    rows = rows_by(result, "wired_delay_ms", "case")
    for delay in (2, 200):
        # Honest baseline stays fair at every latency.
        base = rows[(delay, "no GR")]
        assert 0.4 < base["goodput_NR"] / max(base["goodput_GR"], 1e-9) < 2.5
        # The spoofer out-earns its victim by a wide margin.
        attacked = rows[(delay, "w R2 GR")]
        assert attacked["goodput_GR"] > 2.0 * max(attacked["goodput_NR"], 1e-3)
        # And the victim does worse than without the attacker.
        assert attacked["goodput_NR"] < 0.7 * base["goodput_NR"]
    # Higher latency shrinks everyone's absolute goodput (ACK clocking).
    assert (
        rows[(200, "w R2 GR")]["goodput_GR"] < rows[(2, "w R2 GR")]["goodput_GR"] * 1.2
    )
