"""Figure 9: many greedy receivers — only one survives at 31 ms inflation."""

from conftest import rows_by, run_experiment

N_PAIRS = 8


def test_fig9_only_one_survives(benchmark):
    result = run_experiment(benchmark, "fig9")
    rows = rows_by(result, "n_greedy")
    for (n_greedy,), row in rows.items():
        if n_greedy < 1:
            continue
        ranked = [row[f"rank{i}"] for i in range(N_PAIRS)]
        # One flow dominates; the rest get (virtually) nothing.
        assert ranked[0] > 5.0 * max(ranked[1], 1e-3), (n_greedy, ranked)
        assert sum(ranked[1:]) < 0.5 * ranked[0], (n_greedy, ranked)
