"""Figure 23: GRC detects and mitigates inflated CTS NAV across distances."""

from conftest import rows_by, run_experiment


def test_fig23_grc_nav(benchmark):
    result = run_experiment(benchmark, "fig23")
    rows = rows_by(result, "transport", "distance_m", "case")
    d_close = 20
    # Without GRC the greedy pair shuts the normal pair off in range.
    attacked = rows[("udp", d_close, "GR, no GRC")]
    assert attacked["goodput_R2"] > 5.0 * max(attacked["goodput_R1"], 1e-3)
    # With GRC fairness is restored and misbehavior is detected.
    protected = rows[("udp", d_close, "GR + GRC")]
    assert protected["goodput_R1"] > 0.4 * protected["goodput_R2"]
    assert protected["nav_detections"] > 0
    # Far apart, the inflation cannot be heard and does no harm.
    far = rows[("udp", 70, "GR, no GRC")]
    assert far["goodput_R1"] > 1.0
