"""Assemble EXPERIMENTS.md from results/ plus per-experiment commentary.

Run after ``benchmarks/run_all.py``:

    python benchmarks/make_experiments_md.py

The commentary records (a) what the paper reports for each artifact and
(b) how our measurement compares — the paper-vs-measured record the
reproduction is judged by.
"""

from __future__ import annotations

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

HEADER = """\
# EXPERIMENTS — paper vs. measured

Every table and figure of *Greedy Receivers in IEEE 802.11 Hotspots* (Han &
Qiu, DSN 2007), regenerated on this repository's simulator, plus the two
Section-IX extensions.  Regenerate with `python benchmarks/run_all.py`; the
tables below come from `results/` (full mode: 5-second simulations, median
of 5 seeds, matching the paper's methodology).

**Reading the comparison.** The authors ran ns-2 and a MadWifi testbed; we
run a from-scratch simulator.  Absolute Mbps therefore differ (their exact
PHY overheads, TCP flavor and queueing are not bit-identical), but the
evaluation's *shapes* — who wins, by roughly what factor, where crossovers
fall — are the reproduction target, and several artifacts also match
numerically.  Known systematic differences:

* Our 802.11b control frames ride a 1 Mbps long-preamble PHY like ns-2's
  defaults; totals land within ~10 % of the paper's saturation goodputs.
* "BER" follows ns-2's per-*byte* error semantics — back-solved from the
  paper's own Table III (see `repro/phy/error.py`).
* TCP is Reno with a 20-segment default window; the paper's ns-2 agent
  differs in minor constants (e.g. header sizes: our FERs for TCP frames sit
  within 20 % of Table III's).

"""

#: experiment id -> (paper reference summary, our verdict commentary).
COMMENTARY: dict[str, tuple[str, str]] = {
    "table1": (
        "Paper: 2.1 % / 32 % of frames arrive corrupted (802.11b / 802.11a); "
        "98.8 % / 84 % of corrupted frames keep the destination MAC, and "
        "94.9 % / 91.4 % of those also keep the source.",
        "Match: the calibrated bursty-density model reproduces corruption "
        "rates and destination survival within a few percent; source "
        "survival is modeled symmetric with destination (~0.99b/~0.86a vs "
        "the paper's 0.949/0.914) since no position-symmetric error model "
        "can make the source field fail 4x more often than the destination. "
        "The attack-feasibility conclusion (most corrupted frames remain "
        "attributable) holds in all cases.",
    ),
    "fig1": (
        "Paper: two saturating UDP flows; the greedy receiver completely "
        "grabs the medium and starves the competitor from 0.6 ms of CTS NAV "
        "inflation.",
        "Match: fair 1.8/1.8 Mbps split at zero inflation; NR collapses to "
        "~0.01 Mbps at alpha=6 (0.6 ms) while GR saturates at ~3.5 Mbps — "
        "the same crossover the paper highlights.",
    ),
    "fig2": (
        "Paper: GS's average CW stays near CW_min (31) while NS's climbs "
        "with the inflation, fluctuating once NS barely transmits (v>28).",
        "Match: GS pinned at 31-34 across the sweep; NS rises from ~36 to "
        "45-80 and collapses back toward 31 at v=31 when it stops sending "
        "entirely — including the fluctuation artifact the paper explains.",
    ),
    "fig3": (
        "Paper: Equations (1)-(2), fed with measured CW distributions, "
        "accurately estimate the RTS sending ratio.",
        "Match: model-vs-simulation absolute error stays below ~0.08 over "
        "the whole inflation sweep, with both rising monotonically from "
        "0.5 to ~0.99.",
    ),
    "fig4": (
        "Paper (802.11b TCP): greedy receiver always wins; larger inflation "
        "-> larger gain; RTS+CTS inflation starves from very small values; "
        "ACK-only slightly weaker than CTS-only; all-frames dominates from "
        "2 ms.",
        "Match on the main shapes: all variants favor GR monotonically; "
        "RTS+CTS and 'all' starve NR from ~1-2 ms; CTS at 31 ms shuts NR "
        "off.  One nuance does not reproduce: the paper found ACK-only "
        "slightly weaker than CTS-only because losses make CTS frames more "
        "frequent than ACKs; our loss-free Figure 4 runs have exactly one "
        "CTS and one ACK per exchange, so the two variants coincide.",
    ),
    "fig5": (
        "Paper: same trends under 802.11a, with larger damage per ms of "
        "inflation (smaller IFS/transmission times).",
        "Match: identical ordering; starvation thresholds sit at equal or "
        "smaller inflation than 802.11b.",
    ),
    "fig6": (
        "Paper: against 7 normal TCP flows, the greedy receiver needs "
        "~10 ms of CTS NAV inflation to dominate the medium.",
        "Match: GR overtakes the per-flow average from ~2 ms and dominates "
        "(>4x the mean normal goodput) at 10 ms.",
    ),
    "fig7": (
        "Paper: gains grow with greedy percentage; at GP=50 % the greedy "
        "receiver already leads by >1 Mbps (5 ms) and grabs everything at "
        "31 ms.",
        "Match: monotone in GP for each inflation level; GP=50 % already "
        "decisive, full starvation at GP=100 %/31 ms.",
    ),
    "fig8": (
        "Paper: 0 GR -> fair; 1 GR -> near-starvation of the victim; 2 GRs "
        "-> whoever grabs the medium first keeps it.",
        "Match: per-seed sorted goodputs show one winner taking >3x the "
        "loser with two greedy receivers (the winner alternates with the "
        "seed, which is why the experiment reports sorted values).",
    ),
    "fig9": (
        "Paper: with several 31 ms-inflating receivers among 8 flows, only "
        "one survives; the rest get virtually nothing.",
        "Match: rank-0 exceeds 5x rank-1 for every greedy count >= 1.",
    ),
    "fig10": (
        "Paper: a shared sender dampens the gain (head-of-line blocking) "
        "but TCP still favors the greedy receiver; under UDP both flows "
        "sink together.",
        "Match: TCP 2-rx and 8-rx cases favor GR at large inflation (the "
        "8-rx case needs ~8 simulated seconds for the victims' congestion "
        "windows to collapse); UDP total drops with inflation and stays "
        "near-even between receivers.",
    ),
    "table2": (
        "Paper: the cwnd gap between greedy and normal flows grows with "
        "inflation and is larger with two senders than one (22->4.5 vs "
        "42->3.2 at 31 ms).",
        "Match: both topologies show the greedy flow keeping a (much) "
        "larger average cwnd at high inflation, with the two-sender gap "
        "at least as large as the shared-sender gap.",
    ),
    "table3": (
        "Paper: BER->FER per frame type (e.g. 2e-4 -> 0.203 for TCP data, "
        "7.5e-3 for ACK/CTS).",
        "Match (by construction): the error model was calibrated to this "
        "table; control-frame FERs agree to <1 %, TCP-frame FERs to <20 % "
        "(ns-2 carried slightly larger headers).",
    ),
    "fig11": (
        "Paper: spoofing gain peaks at moderate BER (~2e-4), vanishes at "
        "zero loss, and dies off as loss saturates everything; same trend "
        "in 802.11a.",
        "Match: zero effect at BER 0; GR peaks near 1e-4-2e-4 at ~1.5-1.6 "
        "Mbps vs NR ~0.3; both collapse together by 14e-4. 802.11a mirrors "
        "802.11b.",
    ),
    "fig12": (
        "Paper: goodput of the greedy receiver rises with spoofing GP at "
        "every loss rate.",
        "Match: monotone GP response; the victim's goodput falls "
        "correspondingly.",
    ),
    "fig13": (
        "Paper: with both receivers spoofing each other, MAC retransmission "
        "is disabled network-wide and total goodput drops.",
        "Match: the two-spoofer total lands below the honest total; a "
        "single spoofer still wins individually.",
    ),
    "fig14": (
        "Paper: the greedy receiver out-earns the average normal receiver "
        "for any number of pairs; the gap shrinks under one shared AP.",
        "Match: GR above the normal mean in both topologies, larger gap "
        "with per-flow APs.",
    ),
    "fig15": (
        "Paper: wireline latency makes end-to-end recovery costlier, "
        "widening the spoofer's edge; past ~200 ms the spoofer's own "
        "ACK-clocked goodput decays though it still wins.",
        "Shape match with one caveat: the greedy/normal ratio grows only "
        "mildly with latency (8.4x at 2 ms to 10.1x at 200 ms) because our "
        "Reno victim already collapses at low latency; the signature 400 ms "
        "regime — the attacker's own ACK-clocked goodput decaying (1.55 to "
        "0.76 Mbps) while still far above the victim — reproduces exactly.",
    ),
    "fig16": (
        "Paper: increasing GP widens the gap at every latency; spoofing "
        "20 % of frames already yields ~52 % gain at 200 ms.",
        "Match: GP=20 % measurably hurts the victim at 200 ms, and the "
        "gap grows with GP at every latency.",
    ),
    "fig17": (
        "Paper: under UDP the spoofer steals service time from the victim "
        "sharing its AP; milder than the TCP case.",
        "Match: GR > NR at moderate-to-high loss, with a smaller ratio "
        "than the TCP experiments.",
    ),
    "fig18": (
        "Paper: under hidden-terminal collisions, one faker at GP=100 "
        "dominates; two fakers both suffer (no exponential backoff left).",
        "Match: one faker takes ~3.6 vs ~0.17 Mbps; with two fakers the "
        "flows return to near-even and gain nothing over honest.",
    ),
    "table4": (
        "Paper: sender CWs 124/126 honest -> 362 vs 43 with one faker -> "
        "77/76 with two (802.11b; analogous for 802.11a).",
        "Strong numeric match: ~125/144 -> ~420 vs ~38 -> ~100/~113; the "
        "802.11a rows show the same pattern at smaller absolute values.",
    ),
    "table5": (
        "Paper: under inherent losses faking helps: 1 GR gets 2.49 vs 0.59 "
        "(FER 0.5); with 2 GRs both sit slightly above honest (2-12 %).",
        "Match: 1 GR ~2.0 vs ~0.4 at FER 0.5; both-greedy rows exceed the "
        "honest baseline at every loss rate — the paper's 'useful "
        "surviving technique' observation.",
    ),
    "fig19": (
        "Paper: the faker's relative advantage persists for all crowd "
        "sizes; the absolute gap shrinks as per-flow goodput shrinks.",
        "Match: relative gain stays >1.2x for 2-8 pairs and grows with the "
        "loss rate; the absolute gap narrows with the crowd.",
    ),
    "table6": (
        "Paper (testbed): inflating NAV in RTS-for-TCP-ACK: 2.28/2.51 fair "
        "-> 4.41 vs 0.04 Mbps.",
        "Match: ~1.9/1.9 fair -> ~3.8 vs ~0.004 Mbps at 802.11a/6 Mbps "
        "(our TCP totals run slightly below the testbed's).",
    ),
    "table7": (
        "Paper (testbed): UDP with max NAV inflation: ~4.9 vs 0.08 (ACK, "
        "no RTS/CTS), ~4.65 vs 0.08 (CTS), ~4.65 vs 0.05 (CTS+ACK).",
        "Strong numeric match: ~5.0/~4.6 vs ~0.004 across the three "
        "variants.",
    ),
    "table8": (
        "Paper (testbed emulation): disabling MAC retransmissions toward "
        "the victim: GR +30 %, NR roughly halved (3.51/0.98 from "
        "2.68/1.96).",
        "Match in direction and magnitude: GR up ~75 %, NR down to ~25 % "
        "(our lossier substitute link amplifies the victim's damage).",
    ),
    "table9": (
        "Paper (testbed emulation): CW_max=CW_min toward the greedy flow: "
        "2.79 vs 2.35 from a noisy 2.08/2.99 baseline.",
        "Match in direction: greedy flow up, victim down, greedy > victim "
        "(~2.5 vs ~1.6 from ~2.2/~1.9); the paper's own baseline asymmetry "
        "(±0.5 Mbps) brackets our deltas.",
    ),
    "fig21": (
        "Paper: ~95 % of RSSI samples within 1 dB of the link median.",
        "Match by construction of the measurement model: ~96 % within "
        "1 dB, long tail to ~5 dB.",
    ),
    "fig22": (
        "Paper: a 1 dB threshold yields both low false positives and low "
        "false negatives.",
        "Match: FP ~4 %, FN ~5 % at 1 dB, with the expected monotone "
        "trade-off on both sides.",
    ),
    "fig23": (
        "Paper: GRC restores fairness wherever the inflated CTS can be "
        "heard; validators in RTS range clamp exactly, beyond it the "
        "1500-byte MTU bound leaves the greedy receiver a bounded residual "
        "edge; beyond interference range the attack never mattered.",
        "Match: starvation without GRC inside ~55 m; with GRC the victim "
        "recovers to within ~2x everywhere and detections all attribute to "
        "the greedy receiver; beyond range both flows are independent.",
    ),
    "fig24": (
        "Paper: with GRC both flows track the no-attacker goodput curves "
        "across the BER sweep.",
        "Match: without GRC the spoofer takes 3-5x the victim's goodput; "
        "with GRC the victim returns to within ~50-100 % of its no-attack "
        "curve at every loss rate, with nonzero detections throughout.",
    ),
    "ext_autorate": (
        "Paper (Section IX, prediction only): fake ACKs should backfire "
        "under auto-rate; ACK spoofing should hurt the victim more.",
        "Confirmed by measurement: under ARF the faking receiver loses "
        "~2/3 of its honest-ARF goodput (rate fooled up to 11 Mbps on a "
        "marginal link), and the spoofed victim drops to ~0 with its "
        "sender pinned at an undecodable rate.",
    ),
    "ext_sender_baseline": (
        "Related work (Kyasanur-Vaidya / DOMINO): selfish senders gain "
        "significantly by backoff cheating.",
        "Head-to-head: a 10 ms NAV-inflating receiver captures at least as "
        "much of the medium (>70 % share) as an aggressive CW/8 backoff "
        "cheater — the paper's motivation quantified.",
    ),
    "ext_bursty_nav": (
        "Beyond the paper (robustness extension): the paper measures NAV "
        "inflation on clean channels; real hotspots see bursty "
        "interference.",
        "NAV inflation stays profitable on impaired channels, but "
        "burstiness *blunts* it: on a Gilbert-Elliott channel with the "
        "same average FER as a memoryless one, the honest victim keeps "
        "~100x more goodput (0.14 vs 0.0016 Mbps) because loss bursts "
        "break the greedy receiver's CTS inflation chain and let the "
        "victim's frames through between bursts.",
    ),
    "ext_jammer_crash": (
        "Beyond the paper (robustness extension): how the DCF capture "
        "dynamics the paper relies on interact with external interference "
        "and station churn.",
        "A mid-run crash/reboot of one sender hands its airtime to the "
        "surviving pair (~0.45 Mbps gain at every jamming level) and the "
        "queued MSDUs are dropped, not replayed; a periodic jammer taxes "
        "both pairs roughly proportionally to its duty cycle without "
        "changing who wins.",
    ),
    "ext_rts_roc": (
        "Beyond the paper (attack zoo): \"Detection and Prevention Against "
        "RTS Attacks\" — a sender-side dual of the paper's NAV inflation. "
        "Large-NAV RTS frames to an absent receiver reserve the medium "
        "without ever transmitting data.",
        "The flood is a near-total DoS (victim goodput collapses from ~3.7 "
        "Mbps unflooded to ~0.03 Mbps) and the streaming unanswered-RTS "
        "detector separates it: with ~10 flood RTS per 100 ms window, "
        "thresholds up to 8 flag the flooder on every seed; false "
        "positives from honest RTS retries during collision bursts persist "
        "through threshold 4 and vanish at 8, so threshold 8 is the clean "
        "operating point, while 16 and above miss entirely.  The detector "
        "runs live through the DetectionTap in constant memory, "
        "event-identical to the offline replay (`repro detect diff`).",
    ),
    "ext_hidden_node": (
        "Beyond the paper (channel-model extension): the paper keeps every "
        "station inside carrier-sense range, so its pairwise reach-list "
        "medium never faces the classic 802.11 hotspot failure — two "
        "mutually-hidden senders uplinking to one AP.  This triangle runs "
        "on the new aggregate-interference SINR medium (DESIGN.md §15), "
        "with the pairwise medium answering the same topology for "
        "comparison.",
        "The expected collapse-and-recovery shape, on 802.11a (its 6 Mbps "
        "control frames keep the RTS/CTS handshake cheap; at 802.11b's "
        "1 Mbps the handshake costs what the collisions do and the "
        "recovery vanishes): blind overlap at the AP collapses total "
        "goodput to ~1.5 Mbps (SINR) with contention windows pinned near "
        "their maximum, and RTS/CTS recovers ~2.9x to ~4.5 Mbps.  The "
        "SINR medium is measurably harsher than the pairwise "
        "approximation under overlap (1.54 vs 2.09 Mbps blind), and the "
        "two models agree *exactly* once RTS/CTS serializes the channel — "
        "no concurrent transmissions means no interference to model, a "
        "built-in consistency check on the seam.",
    ),
}

ORDER = [
    "table1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
    "fig8", "fig9", "fig10", "table2", "table3", "fig11", "fig12", "fig13",
    "fig14", "fig15", "fig16", "fig17", "fig18", "table4", "table5",
    "fig19", "table6", "table7", "table8", "table9", "fig21", "fig22",
    "fig23", "fig24", "ext_autorate", "ext_sender_baseline",
    "ext_bursty_nav", "ext_jammer_crash", "ext_rts_roc",
    "ext_hidden_node",
]


#: Hand-written trailer sections (not tied to a results/ table) that must
#: survive regeneration.
FOOTER = """\
## perf: simulation backends

Not a paper artifact — the measurement record for the `vectorized`
simulation backend (DESIGN.md §12).  Both backends are **bit-exact** (all
golden traces, fault traces, campaign metrics and the differential fuzz
tiers agree byte-for-byte), so these numbers are pure wall-clock; pick a
backend with `repro perf --backend`, `repro run --…` via
`RunSettings(backend=…)`, or ambiently with `use_backend("vectorized")`.

Committed references under `benchmarks/perf/` (min of 5 repeats, seed 1,
this container): `baseline.json` (scalar, regression gate for
`repro perf --check-regression`) and `baseline_vectorized.json` (same
scenarios under the vectorized backend, gate for the CI
`backend-diff-smoke` job).  Representative events/s ratios, vectorized
over scalar:

| scenario | stations | speedup |
|---|---|---|
| fig1_nav_udp | 4 | ~1.07x (scheduler-bound; little to batch) |
| fig8_nav_tcp | 4 | ~1.10x |
| spoof_tcp | 4 | ~0.99x |
| dense_hotspot | 240 | **~1.23x** |

`dense_hotspot` (48 hotspot cells, Figure 23 ranges, one ACK-NAV-inflating
AP) is the workload class the backend targets: the scalar medium pays an
O(stations) threshold filter per transmitted frame, the vectorized one a
precomputed hearer-table lookup.  This PR's original acceptance target was
≥3x on a paper scenario; the measured ceiling for *bit-exact*
vectorization is ~1.2–1.5x on this machine (short smoke runs peak near
1.5x; at full baseline duration steady-state traffic dilutes the
transmit-filter share to the ~1.23x above) — once the filter is batched
away, per-event Python dispatch dominates, and batching events themselves
would break the byte-identical-trace contract.  The honest numbers are
committed rather than the target; DESIGN.md §12 records the profile
evidence.
"""


def main() -> int:
    results_dir = ROOT / "results"
    sections = [HEADER]
    missing = []
    for experiment_id in ORDER:
        paper, verdict = COMMENTARY[experiment_id]
        sections.append(f"## {experiment_id}\n")
        sections.append(f"**Paper.** {paper}\n")
        sections.append(f"**This reproduction.** {verdict}\n")
        result_file = results_dir / f"{experiment_id}.txt"
        if result_file.exists():
            sections.append("```\n" + result_file.read_text().rstrip() + "\n```\n")
        else:
            missing.append(experiment_id)
            sections.append(
                "*(measured table pending — run "
                f"`python benchmarks/run_all.py {experiment_id}`)*\n"
            )
    sections.append(FOOTER)
    out = ROOT / "EXPERIMENTS.md"
    out.write_text("\n".join(sections))
    print(f"wrote {out}" + (f" ({len(missing)} tables pending: {missing})" if missing else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
