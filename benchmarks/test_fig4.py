"""Figure 4: TCP NAV inflation per frame-kind variant (802.11b)."""

from conftest import rows_by, run_experiment


def test_fig4_tcp_nav_variants(benchmark):
    result = run_experiment(benchmark, "fig4")
    rows = rows_by(result, "variant", "nav_inflation_ms")
    for variant in ("cts", "rts_cts", "ack", "all"):
        base = rows[(variant, 0.0)]
        top = rows[(variant, 31.0)]
        # Honest baseline is fair; max inflation favors the greedy receiver.
        assert 0.5 < base["goodput_NR"] / max(base["goodput_GR"], 1e-9) < 2.0
        assert top["goodput_GR"] > top["goodput_NR"]
    # Inflating NAV on all frames dominates the medium from ~2 ms already.
    all_2ms = rows[("all", 2.0)]
    assert all_2ms["goodput_NR"] < 0.25 * all_2ms["goodput_GR"]
    # CTS inflation at 31 ms essentially shuts the victim off.
    assert rows[("cts", 31.0)]["goodput_NR"] < 0.2
