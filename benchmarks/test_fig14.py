"""Figure 14: spoofer vs crowd, shared AP vs per-flow APs."""

from conftest import rows_by, run_experiment


def test_fig14_pairs(benchmark):
    result = run_experiment(benchmark, "fig14")
    rows = rows_by(result, "topology", "n_pairs")
    for topology in ("one AP", "per-flow APs"):
        for n_pairs in (2, 4):
            row = rows[(topology, n_pairs)]
            assert row["goodput_GR"] > row["goodput_NR_mean"], row
    # Head-of-line blocking under one AP shrinks the spoofer's edge.
    gap_shared = (
        rows[("one AP", 2)]["goodput_GR"] - rows[("one AP", 2)]["goodput_NR_mean"]
    )
    gap_separate = (
        rows[("per-flow APs", 2)]["goodput_GR"]
        - rows[("per-flow APs", 2)]["goodput_NR_mean"]
    )
    assert gap_separate > gap_shared - 0.15
