"""Table VII (testbed emulation): UDP NAV inflation grabs the whole medium."""

from conftest import rows_by, run_experiment


def test_table7(benchmark):
    result = run_experiment(benchmark, "table7")
    rows = rows_by(result, "variant", "case")
    for variant in (
        "no RTS/CTS, inflated NAV on ACK",
        "with RTS/CTS, inflated NAV on CTS",
        "with RTS/CTS, inflated NAV on CTS/ACK",
    ):
        fair = rows[(variant, "no GR")]
        assert 0.5 < fair["goodput_R1"] / max(fair["goodput_R2"], 1e-9) < 2.0
        greedy = rows[(variant, "1 GR")]
        # Paper: ~4.6-4.9 vs ~0.05-0.08 Mbps.
        assert greedy["goodput_R1"] > 3.5, variant
        assert greedy["goodput_R2"] < 0.3, variant
