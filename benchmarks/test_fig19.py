"""Figure 19: fake-ACK receiver vs a crowd — relative gain persists."""

from conftest import rows_by, run_experiment


def test_fig19_fake_vs_pairs(benchmark):
    result = run_experiment(benchmark, "fig19")
    rows = rows_by(result, "ber", "n_pairs")
    ber = 5e-4
    for n_pairs in (2, 4):
        row = rows[(ber, n_pairs)]
        assert row["relative_gain"] > 1.2, row
    # Absolute lead shrinks with more competitors (per-flow goodput shrinks).
    gap2 = rows[(ber, 2)]["goodput_GR"] - rows[(ber, 2)]["goodput_NR_mean"]
    gap4 = rows[(ber, 4)]["goodput_GR"] - rows[(ber, 4)]["goodput_NR_mean"]
    assert gap4 < gap2 + 0.2
