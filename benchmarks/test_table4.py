"""Table IV: contention windows under hidden terminals + fake ACKs."""

from conftest import rows_by, run_experiment


def test_table4_cw(benchmark):
    result = run_experiment(benchmark, "table4")
    rows = rows_by(result, "phy", "case")
    no_gr = rows[("802.11b", "no GR")]
    one_gr = rows[("802.11b", "1 GR")]
    two_gr = rows[("802.11b", "2 GRs")]
    # Honest: both senders suffer large CWs from collisions.
    assert no_gr["cw_S1"] > 60 and no_gr["cw_S2"] > 60
    # One faker: its sender (S2) collapses to near CW_min, the honest one
    # explodes — the paper's 362 vs 43 contrast.
    assert one_gr["cw_S2"] < 60
    assert one_gr["cw_S1"] > 3.0 * one_gr["cw_S2"]
    # Two fakers: both drop well below the honest baseline.
    assert two_gr["cw_S1"] < no_gr["cw_S1"]
    assert two_gr["cw_S2"] < no_gr["cw_S2"]
