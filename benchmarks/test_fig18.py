"""Figure 18: fake ACKs under hidden-terminal losses."""

from conftest import rows_by, run_experiment


def test_fig18_hidden_terminals(benchmark):
    result = run_experiment(benchmark, "fig18")
    rows = rows_by(result, "case", "greedy_percentage")
    # Honest baseline: roughly fair.
    honest = rows[("only R2 greedy", 0.0)]
    assert 0.4 < honest["goodput_R1"] / max(honest["goodput_R2"], 1e-9) < 2.5
    # One faker at GP=100 dominates (its sender never backs off).
    one = rows[("only R2 greedy", 100.0)]
    assert one["goodput_R2"] > 3.0 * max(one["goodput_R1"], 1e-3)
    # Both fakers: nobody dominates and the pair does no better than honest.
    both = rows[("both greedy", 100.0)]
    total_both = both["goodput_R1"] + both["goodput_R2"]
    total_honest = honest["goodput_R1"] + honest["goodput_R2"]
    assert total_both < total_honest * 1.1
    assert max(both["goodput_R1"], both["goodput_R2"]) < 3.0 * min(
        both["goodput_R1"], both["goodput_R2"]
    )
