"""Regenerate every paper table/figure at full scale.

Runs each experiment in :data:`repro.experiments.ALL_EXPERIMENTS` (full mode:
5-second simulations, 5 seeds, full sweeps) and writes one text file per
experiment under ``results/`` plus a combined ``results/ALL.txt``.  Use
``--quick`` for the reduced benchmark-mode sweeps, or pass experiment ids to
run a subset:

    python benchmarks/run_all.py                 # everything, full scale
    python benchmarks/run_all.py --quick fig4    # one experiment, quick
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.experiments import ALL_EXPERIMENTS, EXTENSIONS, get

#: Cheap experiments first so partial runs still cover most artifacts.
ORDER = [
    "table1", "table3", "fig21", "fig22",
    "fig1", "fig2", "fig3",
    "table4", "table5", "fig18", "fig19",
    "table6", "table7", "table8", "table9",
    "fig11", "fig12", "fig13", "fig17", "fig24",
    "fig7", "fig8", "fig6", "table2", "fig4", "fig5",
    "fig14", "fig23", "fig9", "fig10", "fig15", "fig16",
    "ext_autorate", "ext_sender_baseline",
]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiments", nargs="*", help="subset of experiment ids")
    parser.add_argument("--quick", action="store_true", help="reduced sweeps")
    parser.add_argument(
        "--results-dir",
        default=str(Path(__file__).resolve().parent.parent / "results"),
    )
    args = parser.parse_args(argv)

    known = set(ALL_EXPERIMENTS) | set(EXTENSIONS)
    ids = args.experiments or [e for e in ORDER if e in known]
    unknown = [e for e in ids if e not in known]
    if unknown:
        parser.error(f"unknown experiments: {unknown}")

    results_dir = Path(args.results_dir)
    results_dir.mkdir(exist_ok=True)
    combined: list[str] = []
    for experiment_id in ids:
        started = time.time()
        print(f"[{experiment_id}] running...", flush=True)
        result = get(experiment_id)(quick=args.quick)
        text = result.to_text()
        elapsed = time.time() - started
        footer = f"(generated in {elapsed:.1f}s, {'quick' if args.quick else 'full'} mode)\n"
        (results_dir / f"{experiment_id}.txt").write_text(text + footer)
        combined.append(text + footer)
        print(f"[{experiment_id}] done in {elapsed:.1f}s", flush=True)
    (results_dir / "ALL.txt").write_text("\n".join(combined))
    print(f"wrote {len(ids)} results to {results_dir}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
