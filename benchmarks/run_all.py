"""Regenerate every paper table/figure at full scale.

Runs each experiment in :data:`repro.experiments.ALL_EXPERIMENTS` (full mode:
5-second simulations, 5 seeds, full sweeps) and writes one text file per
experiment under ``results/`` plus a combined ``results/ALL.txt``.  Use
``--quick`` for the reduced benchmark-mode sweeps, ``--jobs N`` to fan whole
experiments out over N worker processes, or pass experiment ids to run a
subset:

    python benchmarks/run_all.py                    # everything, full scale
    python benchmarks/run_all.py --quick fig4       # one experiment, quick
    python benchmarks/run_all.py --quick --jobs 4   # 4 experiments at a time

Parallel runs are bit-identical to serial runs (every seed's simulation owns
its RNG; results are keyed by experiment id and seed, never by completion
order) — tests/test_parallel_engine.py and tests/test_harness_scripts.py
enforce this.  Per-seed results are cached under ``<results-dir>/.cache/``
keyed by (runner, kwargs, seed, code-version), so a repeated invocation only
recomputes what changed; ``--no-cache`` disables that.  Each run also writes
a machine-readable timing summary to ``<results-dir>/BENCH_parallel.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from pathlib import Path

from repro.experiments import ALL_EXPERIMENTS, EXTENSIONS, get
from repro.experiments.common import RunSettings
from repro.runtime import DEFAULT_CACHE_DIRNAME, ResultCache, execution

#: Cheap experiments first so partial runs still cover most artifacts.
ORDER = [
    "table1", "table3", "fig21", "fig22",
    "fig1", "fig2", "fig3",
    "table4", "table5", "fig18", "fig19",
    "table6", "table7", "table8", "table9",
    "fig11", "fig12", "fig13", "fig17", "fig24",
    "fig7", "fig8", "fig6", "table2", "fig4", "fig5",
    "fig14", "fig23", "fig9", "fig10", "fig15", "fig16",
    "ext_autorate", "ext_sender_baseline",
    "ext_bursty_nav", "ext_jammer_crash", "ext_rts_roc",
    "ext_hidden_node",
]


def write_atomic(path: Path, text: str) -> None:
    """Write via a temp file + rename so readers never see a truncated file."""
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def run_one(experiment_id: str, quick: bool, cache_dir: str | None) -> dict:
    """Run one experiment (module-level so worker processes can import it)."""
    cache = ResultCache(cache_dir) if cache_dir else None
    wall_start = time.time()
    cpu_start = time.process_time()
    with execution(jobs=1, cache=cache):
        result = get(experiment_id)(RunSettings.for_mode(quick))
    return {
        "id": experiment_id,
        "text": result.to_text(),
        "wall_s": time.time() - wall_start,
        "cpu_s": time.process_time() - cpu_start,
        "cache": cache.stats() if cache else None,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiments", nargs="*", help="subset of experiment ids")
    parser.add_argument("--quick", action="store_true", help="reduced sweeps")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="run up to N experiments concurrently in worker processes",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every seeded point instead of reusing <results-dir>/.cache",
    )
    parser.add_argument(
        "--results-dir",
        default=str(Path(__file__).resolve().parent.parent / "results"),
    )
    args = parser.parse_args(argv)

    known = set(ALL_EXPERIMENTS) | set(EXTENSIONS)
    ids = args.experiments or [e for e in ORDER if e in known]
    unknown = [e for e in ids if e not in known]
    if unknown:
        parser.error(f"unknown experiments: {unknown}")
    jobs = max(1, args.jobs)

    results_dir = Path(args.results_dir)
    results_dir.mkdir(exist_ok=True)
    cache_dir = None if args.no_cache else str(results_dir / DEFAULT_CACHE_DIRNAME)

    run_started = time.time()
    reports: dict[str, dict] = {}
    if jobs > 1 and len(ids) > 1:
        started = finished = 0
        with ProcessPoolExecutor(max_workers=min(jobs, len(ids))) as pool:
            futures = {}
            for experiment_id in ids:
                futures[pool.submit(run_one, experiment_id, args.quick, cache_dir)] = (
                    experiment_id
                )
                started += 1
                print(f"[{experiment_id}] started ({started}/{len(ids)})", flush=True)
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    report = future.result()
                    reports[report["id"]] = report
                    finished += 1
                    print(
                        f"[{report['id']}] done in {report['wall_s']:.1f}s "
                        f"({finished}/{len(ids)} finished)",
                        flush=True,
                    )
    else:
        for experiment_id in ids:
            print(f"[{experiment_id}] running...", flush=True)
            report = run_one(experiment_id, args.quick, cache_dir)
            reports[experiment_id] = report
            print(f"[{experiment_id}] done in {report['wall_s']:.1f}s", flush=True)

    # Emit artifacts in the deterministic requested order, whatever the
    # completion order was, and atomically so interrupts never truncate.
    mode = "quick" if args.quick else "full"
    for experiment_id in ids:
        report = reports[experiment_id]
        footer = f"(generated in {report['wall_s']:.1f}s, {mode} mode)\n"
        write_atomic(results_dir / f"{experiment_id}.txt", report["text"] + footer)
    # ALL.txt covers every experiment with an on-disk table, not just this
    # invocation's subset, so partial reruns never gut the combined file.
    combined = [
        (results_dir / f"{experiment_id}.txt").read_text()
        for experiment_id in ORDER
        if experiment_id in known and (results_dir / f"{experiment_id}.txt").exists()
    ]
    write_atomic(results_dir / "ALL.txt", "\n".join(combined))

    total_wall = time.time() - run_started
    total_cpu = sum(r["cpu_s"] for r in reports.values())
    cache_totals = {"hits": 0, "misses": 0, "stores": 0, "errors": 0}
    for report in reports.values():
        if report["cache"]:
            for key in cache_totals:
                cache_totals[key] += report["cache"][key]
    summary = {
        "mode": mode,
        "jobs": jobs,
        "experiments_run": len(ids),
        "total_wall_s": round(total_wall, 3),
        "total_cpu_s": round(total_cpu, 3),
        "cache": cache_totals if cache_dir else None,
        "experiments": [
            {
                "id": experiment_id,
                "wall_s": round(reports[experiment_id]["wall_s"], 3),
                "cpu_s": round(reports[experiment_id]["cpu_s"], 3),
                "cache": reports[experiment_id]["cache"],
            }
            for experiment_id in ids
        ],
    }
    write_atomic(results_dir / "BENCH_parallel.json", json.dumps(summary, indent=2) + "\n")

    if cache_dir:
        print(
            f"cache: {cache_totals['hits']} hits, {cache_totals['misses']} misses, "
            f"{cache_totals['errors']} corrupt entries ignored",
            flush=True,
        )
    print(
        f"wrote {len(ids)} results to {results_dir} "
        f"({total_wall:.1f}s wall, {total_cpu:.1f}s worker CPU, jobs={jobs})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
