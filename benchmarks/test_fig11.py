"""Figure 11: ACK spoofing vs loss rate (TCP)."""

from conftest import rows_by, run_experiment


def test_fig11_spoof_vs_ber(benchmark):
    result = run_experiment(benchmark, "fig11")
    rows = rows_by(result, "phy", "ber", "case")
    # No loss: spoofed ACKs change nothing (there is nothing to suppress).
    clean = rows[("802.11b", 0.0, "w R2 GR")]
    clean_base = rows[("802.11b", 0.0, "no GR")]
    assert abs(clean["goodput_R2_or_GR"] - clean_base["goodput_R2_or_GR"]) < 0.4
    # Moderate loss: the spoofer wins big; honest flows stay comparable.
    ber = 2e-4
    base = rows[("802.11b", ber, "no GR")]
    attacked = rows[("802.11b", ber, "w R2 GR")]
    assert 0.4 < base["goodput_R1_or_NR"] / max(base["goodput_R2_or_GR"], 1e-9) < 2.5
    assert attacked["goodput_R2_or_GR"] > 1.5 * attacked["goodput_R1_or_NR"]
    # Victim does worse than without the attacker.
    assert attacked["goodput_R1_or_NR"] < base["goodput_R1_or_NR"]
