"""Table I: corrupted frames mostly preserve MAC addresses."""

from conftest import rows_by, run_experiment


def test_table1_address_survival(benchmark):
    result = run_experiment(benchmark, "table1")
    rows = rows_by(result, "phy", "source")
    model_b = rows[("802.11b", "model")]
    model_a = rows[("802.11a", "model")]
    # 802.11b: rare corruption, addresses nearly always survive.
    assert 0.01 < model_b["corruption_rate"] < 0.04
    assert model_b["dst_survival"] > 0.95
    # 802.11a: frequent corruption, addresses survive ~80-90 %.
    assert 0.25 < model_a["corruption_rate"] < 0.40
    assert 0.70 < model_a["dst_survival"] < 0.95
    # Either way the attack stays feasible: most corrupted frames are
    # attributable to the right stations.
    assert model_a["dst_survival"] * model_a["src_survival_given_dst"] > 0.5
