"""Figure 7: greedy percentage sweep — partial misbehavior still pays."""

from conftest import rows_by, run_experiment


def test_fig7_greedy_percentage(benchmark):
    result = run_experiment(benchmark, "fig7")
    rows = rows_by(result, "nav_inflation_ms", "greedy_percentage")
    # GP=0 is the honest baseline; GP=100 dominates.
    for nav in (10.0, 31.0):
        honest = rows[(nav, 0.0)]
        assert honest["goodput_GR"] < 2.0 * max(honest["goodput_NR"], 1e-9)
        full = rows[(nav, 100.0)]
        assert full["goodput_GR"] > 3.0 * max(full["goodput_NR"], 1e-3)
        # Half-time greediness already gives a substantial edge.
        half = rows[(nav, 50.0)]
        assert half["goodput_GR"] > half["goodput_NR"]
