"""Ablation: EIFS deferral in the fake-ACK scenario.

After receiving a corrupted frame, 802.11 stations defer by EIFS instead of
DIFS.  The fake-ACK dynamics of Figure 18 combine backoff suppression with
these deferral rules; this ablation quantifies how much of the honest
sender's disadvantage comes from backoff alone (EIFS off) versus backoff
plus EIFS (standard).
"""

from repro.experiments.common import run_fake_inherent_loss
from repro.core.greedy import GreedyConfig
from repro.net.scenario import Scenario

US = 1_000_000.0


def run_fake(eifs_enabled: bool, seed: int = 1, duration: float = 2.0):
    s = Scenario(seed=seed, rts_enabled=False)
    for name in ("S1", "S2"):
        s.add_wireless_node(name, eifs_enabled=eifs_enabled)
    s.add_wireless_node("R1", eifs_enabled=eifs_enabled)
    s.add_wireless_node(
        "R2", greedy=GreedyConfig.ack_faker(), eifs_enabled=eifs_enabled
    )
    s.error_model.set_data_fer("S1", "R1", 0.5)
    s.error_model.set_data_fer("S2", "R2", 0.5)
    f1, k1 = s.udp_flow("S1", "R1")
    f2, k2 = s.udp_flow("S2", "R2")
    f1.start()
    f2.start()
    s.run(duration)
    return {
        "goodput_R1": k1.goodput_mbps(duration * US),
        "goodput_R2": k2.goodput_mbps(duration * US),
    }


def test_ablation_eifs(benchmark):
    standard = benchmark.pedantic(
        lambda: run_fake(eifs_enabled=True), rounds=1, iterations=1
    )
    no_eifs = run_fake(eifs_enabled=False)
    # The greedy receiver wins in both configurations: backoff suppression is
    # the dominant mechanism, EIFS only modulates it.
    assert standard["goodput_R2"] > standard["goodput_R1"]
    assert no_eifs["goodput_R2"] > no_eifs["goodput_R1"]
    # Totals stay in the same ballpark (EIFS is a second-order effect here).
    total_standard = standard["goodput_R1"] + standard["goodput_R2"]
    total_no_eifs = no_eifs["goodput_R1"] + no_eifs["goodput_R2"]
    assert 0.5 < total_standard / total_no_eifs < 2.0
