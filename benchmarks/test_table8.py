"""Table VIII (testbed emulation): spoofing boosts GR, halves NR."""

from conftest import rows_by, run_experiment


def test_table8(benchmark):
    result = run_experiment(benchmark, "table8")
    rows = rows_by(result, "case")
    fair = rows[("no GR",)]
    greedy = rows[("1 GR",)]
    # Paper: GR +30 %, NR roughly halved.
    assert greedy["goodput_GR"] > fair["goodput_GR"] * 1.15
    assert greedy["goodput_NR"] < fair["goodput_NR"] * 0.7
