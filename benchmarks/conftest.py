"""Shared helpers for the per-figure/table benchmark suite.

Each benchmark regenerates one paper table/figure in ``quick`` mode (short
runs, reduced sweeps) under ``pytest-benchmark`` timing, then asserts the
*shape* the paper reports — who wins, by roughly what factor, where the
crossovers fall.  Full-scale numbers live in EXPERIMENTS.md and are produced
by ``benchmarks/run_all.py``.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import get
from repro.experiments.common import RunSettings
from repro.runtime import execution
from repro.stats import ExperimentResult


def run_experiment(benchmark, experiment_id: str) -> ExperimentResult:
    """Run one experiment (quick mode) exactly once under the benchmark.

    Set ``REPRO_JOBS=N`` to fan each experiment's seeded repetitions out over
    N worker processes; results are bit-identical to the serial run (see
    tests/test_parallel_engine.py), only the timings change.
    """
    jobs = int(os.environ.get("REPRO_JOBS", "1"))

    def once() -> ExperimentResult:
        with execution(jobs=jobs):
            return get(experiment_id)(RunSettings.quick())

    return benchmark.pedantic(once, rounds=1, iterations=1)


def rows_by(result: ExperimentResult, *keys: str) -> dict[tuple, dict]:
    """Index rows by a tuple of column values."""
    return {tuple(row[k] for k in keys): row for row in result.rows}
