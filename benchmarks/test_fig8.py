"""Figure 8: 0/1/2 greedy receivers, 2 TCP pairs."""

from conftest import rows_by, run_experiment


def test_fig8_greedy_count(benchmark):
    result = run_experiment(benchmark, "fig8")
    rows = rows_by(result, "nav_inflation_ms", "n_greedy")
    nav = 31.0
    fair = rows[(nav, 0)]
    assert 0.5 < fair["goodput_R0"] / max(fair["goodput_R1"], 1e-9) < 2.0
    one = rows[(nav, 1)]
    assert one["goodput_R1"] > 3.0 * max(one["goodput_R0"], 1e-3)
    # Both greedy: winner-takes-all — whoever grabs the medium first keeps it
    # (per-seed sorted values, since the winner alternates between seeds).
    two = rows[(nav, 2)]
    assert two["goodput_hi"] > 3.0 * max(two["goodput_lo"], 1e-3)
