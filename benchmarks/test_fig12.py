"""Figure 12: spoofing gain grows with greedy percentage."""

from conftest import rows_by, run_experiment


def test_fig12_gp_sweep(benchmark):
    result = run_experiment(benchmark, "fig12")
    rows = rows_by(result, "ber", "greedy_percentage")
    ber = 2e-4
    g0 = rows[(ber, 0.0)]
    g100 = rows[(ber, 100.0)]
    # More spoofing, more gain; the victim degrades correspondingly.
    assert g100["goodput_GR"] > g0["goodput_GR"]
    assert g100["goodput_NR"] < g0["goodput_NR"]
    assert g100["goodput_GR"] > 1.5 * max(g100["goodput_NR"], 1e-3)
