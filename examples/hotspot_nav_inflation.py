"""NAV inflation in a busy hotspot, and the GRC countermeasure.

Reproduces the paper's core misbehavior-1 story end to end:

1. sweep the amount of CTS NAV inflation and watch the greedy client's
   share of the medium grow (an ASCII rendition of Figure 1);
2. switch on the GRC NAV validator at every station and watch fairness come
   back, with the misbehaving client identified by name.

Run:  python examples/hotspot_nav_inflation.py
"""

from repro import GreedyConfig, Scenario
from repro.mac.frames import FrameKind

DURATION_S = 2.0
US = 1_000_000.0
BAR_WIDTH = 44


def run_hotspot(nav_inflation_us: float, grc: bool, seed: int = 7):
    scenario = Scenario(seed=seed)
    scenario.add_wireless_node("AP-1")
    scenario.add_wireless_node("AP-2")
    scenario.add_wireless_node("alice")
    config = (
        GreedyConfig.nav_inflator(nav_inflation_us, {FrameKind.CTS})
        if nav_inflation_us > 0
        else None
    )
    scenario.add_wireless_node("mallory", greedy=config)
    if grc:
        scenario.enable_nav_validation()

    src1, sink1 = scenario.udp_flow("AP-1", "alice")
    src2, sink2 = scenario.udp_flow("AP-2", "mallory")
    src1.start()
    src2.start()
    scenario.run(DURATION_S)
    return (
        sink1.goodput_mbps(DURATION_S * US),
        sink2.goodput_mbps(DURATION_S * US),
        scenario.report,
    )


def bar(value: float, scale: float) -> str:
    return "#" * max(0, round(value / scale * BAR_WIDTH))


def main() -> None:
    print("CTS NAV inflation sweep (no countermeasure)\n")
    print(f"{'inflation':>10}  {'alice':>6}  {'mallory':>7}")
    scale = 4.0
    for nav_ms in (0.0, 0.2, 0.4, 0.6, 1.0, 5.0, 31.0):
        alice, mallory, _report = run_hotspot(nav_ms * 1000.0, grc=False)
        print(f"{nav_ms:8.1f}ms  {alice:6.2f}  {mallory:7.2f}  |{bar(mallory, scale)}")
    print("\nmallory owns the channel from ~0.6 ms of inflation on.\n")

    print("Same hotspot with the GRC NAV validator on every station:\n")
    for nav_ms in (5.0, 31.0):
        alice, mallory, report = run_hotspot(nav_ms * 1000.0, grc=True)
        offenders = report.offenders("nav")
        print(
            f"{nav_ms:8.1f}ms  alice {alice:5.2f}  mallory {mallory:5.2f}  "
            f"detections: {dict(offenders)}"
        )
    print("\nFairness restored, and every detection points at mallory.")


if __name__ == "__main__":
    main()
