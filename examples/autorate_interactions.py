"""Rate adaptation vs greedy receivers — the paper's future work, measured.

The paper's conclusion predicts two interactions with auto-rate (ARF):
fake ACKs should *backfire* (the faked feedback drives the sender to a
modulation the channel can't carry) while ACK spoofing should get *worse*
for the victim (its sender never falls back to a decodable rate).

Run:  python examples/autorate_interactions.py
"""

from repro.experiments.ext_autorate import (
    run_fake_ack_autorate,
    run_spoof_autorate,
)

DURATION_S = 3.0
SEED = 1


def main() -> None:
    print("Fake ACKs under ARF (marginal 11 Mbps link, clean at 2 Mbps)\n")
    honest = run_fake_ack_autorate(SEED, DURATION_S, greedy=False, autorate=True)
    faking = run_fake_ack_autorate(SEED, DURATION_S, greedy=True, autorate=True)
    print(
        f"  honest client : {honest['goodput_R1']:.2f} Mbps "
        f"(ARF settles at {honest['gs_rate_final']:g} Mbps)"
    )
    print(
        f"  faking client : {faking['goodput_R1']:.2f} Mbps "
        f"(ARF fooled up to {faking['gs_rate_final']:g} Mbps)"
    )
    print("  -> faking ACKs BACKFIRES under auto-rate, as the paper predicts.\n")

    print("ACK spoofing under ARF\n")
    clean = run_spoof_autorate(SEED, DURATION_S, spoof=False, autorate=True)
    spoofed = run_spoof_autorate(SEED, DURATION_S, spoof=True, autorate=True)
    print(
        f"  victim, no attacker : {clean['goodput_NR']:.2f} Mbps "
        f"(sender adapts to {clean['ns_rate_final']:g} Mbps)"
    )
    print(
        f"  victim, spoofed     : {spoofed['goodput_NR']:.2f} Mbps "
        f"(sender pinned at {spoofed['ns_rate_final']:g} Mbps)"
    )
    print(f"  attacker            : {spoofed['goodput_GR']:.2f} Mbps")
    print("  -> spoofing is even more damaging with auto-rate in play.")


if __name__ == "__main__":
    main()
