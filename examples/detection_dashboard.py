"""An operator's view: all three misbehaviors active, GRC everywhere.

Builds a hotspot where three different clients run the three different
misbehaviors simultaneously, turns on every GRC detector plus the prober,
and prints what a network operator would see: per-offender verdicts from the
:class:`~repro.core.detection.MisbehaviorMonitor` and the airtime ledger
from the frame tracer.

Run:  python examples/detection_dashboard.py
"""

from repro import GreedyConfig, Scenario
from repro.core.detection import (
    FakeAckDetector,
    MisbehaviorMonitor,
    ProbeResponder,
    Prober,
)
from repro.mac.frames import FrameKind
from repro.phy.error import set_ber_all_pairs
from repro.stats import FrameTracer

DURATION_S = 6.0
US = 1_000_000.0


def main() -> None:
    s = Scenario(seed=5)
    # Access points.
    s.add_wireless_node("AP-1", position=(0.0, 0.0))
    s.add_wireless_node("AP-2", position=(2.0, 0.0))
    s.add_wireless_node("AP-3", position=(0.0, 2.0))
    s.add_wireless_node("AP-4", position=(2.0, 2.0))
    # One honest client and three misbehaving ones.
    s.add_wireless_node("carol", position=(10.0, 0.0))
    s.add_wireless_node(
        "nav-cheat",
        position=(0.0, 10.0),
        greedy=GreedyConfig.nav_inflator(8_000.0, {FrameKind.CTS}),
    )
    s.add_wireless_node(
        "spoofer",
        position=(40.0, 0.0),
        greedy=GreedyConfig.ack_spoofer(victims={"carol"}),
    )
    s.add_wireless_node("faker", position=(10.0, 10.0), greedy=GreedyConfig.ack_faker())

    # A mildly noisy channel gives the spoofer and the faker something to
    # exploit.
    set_ber_all_pairs(s.error_model, list(s.nodes), 1e-4)

    # Full GRC: every station validates NAVs, every AP vets ACK RSSI, and
    # the faker's own AP runs the application-loss prober.
    s.enable_nav_validation()
    s.enable_spoof_detection(["AP-1", "AP-2", "AP-3", "AP-4"])
    prober = Prober(s.sim, s.nodes["AP-4"], "faker")
    ProbeResponder(s.nodes["faker"], prober.flow_id)
    fake_detector = FakeAckDetector(s.macs["AP-4"], prober, "faker", s.report)
    prober.start()

    tracer = FrameTracer(s.medium)

    flows = [
        s.tcp_flow("AP-1", "carol"),
        s.tcp_flow("AP-2", "nav-cheat"),
        s.tcp_flow("AP-3", "spoofer"),
    ]
    udp = s.udp_flow("AP-4", "faker")
    for sender, _receiver in flows:
        sender.start()
    udp[0].start()

    s.run(DURATION_S)
    fake_detector.evaluate(s.sim.now)

    print(f"Hotspot after {DURATION_S:.0f} simulated seconds\n")
    print("Goodput:")
    for (_snd, rcv), name in zip(flows, ("carol", "nav-cheat", "spoofer")):
        print(f"  {name:>10}: {rcv.goodput_mbps(DURATION_S * US):5.2f} Mbps (tcp)")
    print(f"  {'faker':>10}: {udp[1].goodput_mbps(DURATION_S * US):5.2f} Mbps (udp)")

    print("\nAirtime consumed per radio (ms):")
    for name, airtime in sorted(
        tracer.airtime_by_sender().items(), key=lambda kv: -kv[1]
    ):
        print(f"  {name:>10}: {airtime / 1000:8.1f}")

    print("\nGRC verdicts:")
    print(MisbehaviorMonitor(s.report).to_text())


if __name__ == "__main__":
    main()
