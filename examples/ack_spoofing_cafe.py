"""ACK spoofing in a lossy cafe hotspot, with RSSI-based detection.

Two laptops download over TCP from two access points across a noisy channel
(BER 2e-4: about one in five data frames corrupted).  The attacker sniffs
the victim's downlink in promiscuous mode and transmits MAC-layer ACKs on
the victim's behalf, so the victim's losses are never repaired at the MAC
and its TCP collapses.

The sender-side GRC detector keeps the median RSSI of frames known to come
from the victim; a MAC ACK more than 1 dB off — and weaker by the capture
margin — is provably spoofed and ignored, re-enabling MAC retransmission.

Run:  python examples/ack_spoofing_cafe.py
"""

from repro import GreedyConfig, Scenario
from repro.phy.error import set_ber_all_pairs

DURATION_S = 8.0
US = 1_000_000.0
BER = 2e-4


def run_cafe(spoof: bool, grc: bool, seed: int = 7):
    scenario = Scenario(seed=seed)
    # Geometry matters for capture: the victim sits near its AP, the
    # attacker farther away, so a genuine ACK always beats a spoofed one.
    scenario.add_wireless_node("AP-victim", position=(0.0, 0.0))
    scenario.add_wireless_node("AP-attacker", position=(60.0, 60.0))
    scenario.add_wireless_node("victim", position=(10.0, 0.0))
    config = GreedyConfig.ack_spoofer(victims={"victim"}) if spoof else None
    scenario.add_wireless_node("attacker", position=(48.0, 20.0), greedy=config)
    set_ber_all_pairs(
        scenario.error_model,
        ["AP-victim", "AP-attacker", "victim", "attacker"],
        BER,
    )
    if grc:
        scenario.enable_spoof_detection(["AP-victim"])

    snd1, rcv1 = scenario.tcp_flow("AP-victim", "victim")
    snd2, rcv2 = scenario.tcp_flow("AP-attacker", "attacker")
    snd1.start()
    snd2.start()
    scenario.run(DURATION_S)
    return {
        "victim": rcv1.goodput_mbps(DURATION_S * US),
        "attacker": rcv2.goodput_mbps(DURATION_S * US),
        "spoofed_acks": scenario.macs["attacker"].stats.tx_spoofed_ack,
        "ignored_acks": scenario.macs["AP-victim"].stats.acks_ignored_by_grc,
        "detections": scenario.report.count("rssi-spoof"),
    }


def show(title: str, row: dict) -> None:
    print(f"{title}")
    print(f"  victim   {row['victim']:.2f} Mbps")
    print(f"  attacker {row['attacker']:.2f} Mbps")
    if row["spoofed_acks"]:
        print(f"  (spoofed ACKs transmitted: {row['spoofed_acks']})")
    if row["detections"]:
        print(
            f"  (GRC: {row['detections']} detections, "
            f"{row['ignored_acks']} spoofed ACKs ignored)"
        )
    print()


def main() -> None:
    show("Honest cafe (lossy channel, no attacker):", run_cafe(False, False))
    show("Attacker spoofs MAC ACKs for the victim:", run_cafe(True, False))
    show("Same attack with GRC on the victim's AP:", run_cafe(True, True))


if __name__ == "__main__":
    main()
