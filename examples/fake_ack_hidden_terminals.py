"""Fake ACKs under hidden terminals, and the loss-consistency detector.

Two APs sit out of each other's carrier-sense range; their two clients sit
between them, so both downlinks suffer collision losses.  The greedy client
acknowledges even *corrupted* frames (Table I shows the MAC addresses almost
always survive corruption, so it knows the frame was meant for it).  Its AP
then never performs exponential backoff and crushes the honest AP.

Detection: the AP probes the client at the application layer (ping).  Fake
ACKs make the MAC loss rate look near-zero while probes keep dying —
``applicationLoss >> MACLoss^(maxRetries+1)`` exposes the client.

Run:  python examples/fake_ack_hidden_terminals.py
"""

from repro import ChannelConfig, GreedyConfig, Scenario
from repro.core.detection import FakeAckDetector, ProbeResponder, Prober

DURATION_S = 3.0
US = 1_000_000.0


def run(greedy: bool, seed: int = 11):
    scenario = Scenario(
        seed=seed, rts_enabled=False, channel=ChannelConfig(ranges=(55.0, 99.0))
    )
    scenario.add_wireless_node("AP-honest", position=(0.0, 0.0))
    scenario.add_wireless_node("AP-greedy", position=(108.0, 0.0))
    scenario.add_wireless_node("honest-client", position=(54.0, 1.0))
    config = GreedyConfig.ack_faker() if greedy else None
    scenario.add_wireless_node("greedy-client", position=(54.0, -1.0), greedy=config)

    src1, sink1 = scenario.udp_flow("AP-honest", "honest-client")
    src2, sink2 = scenario.udp_flow("AP-greedy", "greedy-client")
    src1.start()
    src2.start()

    # The greedy AP (a well-behaving operator) probes its own client.
    prober = Prober(scenario.sim, scenario.nodes["AP-greedy"], "greedy-client")
    ProbeResponder(scenario.nodes["greedy-client"], prober.flow_id)
    detector = FakeAckDetector(
        scenario.macs["AP-greedy"], prober, "greedy-client", scenario.report
    )
    prober.start()

    scenario.run(DURATION_S)
    detected = detector.evaluate(scenario.sim.now)
    return {
        "honest": sink1.goodput_mbps(DURATION_S * US),
        "greedy": sink2.goodput_mbps(DURATION_S * US),
        "cw_honest_ap": scenario.macs["AP-honest"].stats.average_cw,
        "cw_greedy_ap": scenario.macs["AP-greedy"].stats.average_cw,
        "mac_loss_seen": scenario.macs["AP-greedy"].stats.mac_loss_rate(
            "greedy-client"
        ),
        "probe_loss": prober.application_loss_rate(),
        "detected": detected,
    }


def main() -> None:
    honest = run(greedy=False)
    print("Hidden-terminal hotspot, both clients honest:")
    print(
        f"  goodput {honest['honest']:.2f} / {honest['greedy']:.2f} Mbps, "
        f"sender CWs {honest['cw_honest_ap']:.0f} / {honest['cw_greedy_ap']:.0f}"
    )

    attacked = run(greedy=True)
    print("\nOne client fakes ACKs for corrupted frames:")
    print(
        f"  goodput {attacked['honest']:.2f} / {attacked['greedy']:.2f} Mbps, "
        f"sender CWs {attacked['cw_honest_ap']:.0f} / {attacked['cw_greedy_ap']:.0f}"
    )
    print(
        f"  the greedy AP sees MAC loss {attacked['mac_loss_seen']:.1%} "
        f"but probe loss {attacked['probe_loss']:.1%}"
    )
    print(f"  fake-ACK detector verdict: {'DETECTED' if attacked['detected'] else 'clean'}")


if __name__ == "__main__":
    main()
