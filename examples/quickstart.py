"""Quickstart: one greedy receiver starves a competing hotspot flow.

Two access points each send saturating UDP traffic to one client.  One
client inflates the NAV field of its CTS frames by 10 ms — silencing every
other station while its own sender keeps transmitting.

Run:  python examples/quickstart.py
"""

from repro import GreedyConfig, Scenario
from repro.mac.frames import FrameKind

DURATION_S = 2.0
US = 1_000_000.0


def run(greedy: bool) -> tuple[float, float]:
    """Return (normal receiver goodput, greedy receiver goodput) in Mbps."""
    scenario = Scenario(seed=42)
    scenario.add_wireless_node("AP-1")
    scenario.add_wireless_node("AP-2")
    scenario.add_wireless_node("honest-client")
    config = GreedyConfig.nav_inflator(10_000.0, {FrameKind.CTS}) if greedy else None
    scenario.add_wireless_node("greedy-client", greedy=config)

    honest_src, honest_sink = scenario.udp_flow("AP-1", "honest-client")
    greedy_src, greedy_sink = scenario.udp_flow("AP-2", "greedy-client")
    honest_src.start()
    greedy_src.start()
    scenario.run(DURATION_S)
    return (
        honest_sink.goodput_mbps(DURATION_S * US),
        greedy_sink.goodput_mbps(DURATION_S * US),
    )


def main() -> None:
    honest_fair, greedy_fair = run(greedy=False)
    print("Both clients honest:")
    print(f"  client 1: {honest_fair:5.2f} Mbps")
    print(f"  client 2: {greedy_fair:5.2f} Mbps")

    honest, greedy = run(greedy=True)
    print("\nClient 2 inflates its CTS NAV by 10 ms:")
    print(f"  honest client: {honest:5.2f} Mbps   <- starved")
    print(f"  greedy client: {greedy:5.2f} Mbps   <- grabs the medium")


if __name__ == "__main__":
    main()
